//! SQL DML abstract syntax tree.
//!
//! Covers exactly the DML the OntoAccess translator emits (paper §5):
//! `INSERT INTO … VALUES`, `UPDATE … SET … WHERE`, `DELETE FROM … WHERE`,
//! and `SELECT [DISTINCT] … FROM t1 a1, t2 a2, … WHERE …` with
//! conjunctive/disjunctive comparison predicates — plus the set-based
//! write forms the batched translation pipeline emits: multi-row
//! `INSERT … VALUES (…), (…)`, `WHERE pk IN (…)` row sets, and the
//! grouped `UPDATE … BY (…) SET (…) VALUES …` applying per-key
//! assignments to many rows in one statement.

use crate::value::Value;

/// Any DML statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `INSERT INTO table (columns) VALUES (row), …`.
    Insert(InsertStmt),
    /// `UPDATE table SET col = expr, … [WHERE expr]`.
    Update(UpdateStmt),
    /// `UPDATE table BY (key cols) SET (set cols) VALUES (row), …`.
    BulkUpdate(BulkUpdateStmt),
    /// `DELETE FROM table [WHERE expr]`.
    Delete(DeleteStmt),
    /// `SELECT [DISTINCT] items FROM tables [WHERE expr]`.
    Select(SelectStmt),
}

impl Statement {
    /// The table a DML statement targets (`None` for SELECT).
    pub fn target_table(&self) -> Option<&str> {
        match self {
            Statement::Insert(s) => Some(&s.table),
            Statement::Update(s) => Some(&s.table),
            Statement::BulkUpdate(s) => Some(&s.table),
            Statement::Delete(s) => Some(&s.table),
            Statement::Select(_) => None,
        }
    }
}

/// `INSERT INTO table (columns) VALUES (row), (row), …`.
///
/// One statement may carry any number of value rows (the set-based
/// write pipeline folds every insert of one shape into one statement);
/// a single row prints exactly as the classic single-row form.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Column names, parallel to every row of `rows`.
    pub columns: Vec<String>,
    /// Literal value rows; each row is parallel to `columns`.
    pub rows: Vec<Vec<Value>>,
}

impl InsertStmt {
    /// The classic single-row `INSERT INTO … VALUES (…)`.
    pub fn single(table: impl Into<String>, columns: Vec<String>, values: Vec<Value>) -> Self {
        InsertStmt {
            table: table.into(),
            columns,
            rows: vec![values],
        }
    }
}

/// `UPDATE table BY (key columns) SET (set columns) VALUES (tuple), …;`
///
/// The set-based form of a family of single-row UPDATEs sharing one
/// shape. Each tuple lists the key values (matched with SQL equality
/// against the key columns — the translator puts the primary key first,
/// plus any guard columns such as the paper's Listing-18 current-value
/// equality) followed by the new values for the set columns. Every
/// tuple's key is matched against the **pre-statement** state — the
/// same snapshot semantics as a classic UPDATE's WHERE clause — and
/// the matched rows are then updated in tuple order. For the tuples
/// the translator emits (disjoint primary keys, guards over each row's
/// own values) this coincides with the per-row UPDATE sequence it
/// replaces; tuples that key on values an earlier tuple writes do not.
#[derive(Debug, Clone, PartialEq)]
pub struct BulkUpdateStmt {
    /// Target table.
    pub table: String,
    /// Columns matched (with `=`) against each row's key values.
    pub key_columns: Vec<String>,
    /// Columns assigned from each row's set values.
    pub set_columns: Vec<String>,
    /// Per-row key/set values.
    pub rows: Vec<BulkRow>,
}

/// One row group of a [`BulkUpdateStmt`].
#[derive(Debug, Clone, PartialEq)]
pub struct BulkRow {
    /// Values matched against the statement's key columns.
    pub key: Vec<Value>,
    /// Values assigned to the statement's set columns.
    pub set: Vec<Value>,
}

/// `UPDATE table SET assignments [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `column = expr` pairs.
    pub assignments: Vec<(String, Expr)>,
    /// Row filter (absent = all rows).
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM table [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Row filter (absent = all rows).
    pub where_clause: Option<Expr>,
}

/// `SELECT [DISTINCT] items FROM tables [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Deduplicate result rows.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Cross-joined table references (join conditions live in the WHERE
    /// clause — the classic SPARQL-to-SQL output shape).
    pub from: Vec<TableRef>,
    /// Row filter.
    pub where_clause: Option<Expr>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (`FROM author a` → `a`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in scope (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// `expr [AS alias]`.
    Expr {
        /// Projected expression.
        expr: Expr,
        /// Output column name.
        alias: Option<String>,
    },
}

/// A column reference, optionally qualified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Qualifier (table name or alias).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Scalar/boolean expressions with SQL three-valued logic.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Value(Value),
    /// Column reference.
    Column(ColumnRef),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (item, …)` — the row-set restriction the batched
    /// delete pipeline emits (`WHERE pk IN (…)`).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate items (usually literals).
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

impl Expr {
    /// `left = right`.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    /// `left AND right`.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    /// `left OR right`.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Or, left, right)
    }

    /// Generic binary node.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Column reference shorthand.
    pub fn col(column: &str) -> Expr {
        Expr::Column(ColumnRef::bare(column))
    }

    /// Qualified column reference shorthand.
    pub fn qcol(table: &str, column: &str) -> Expr {
        Expr::Column(ColumnRef::qualified(table, column))
    }

    /// Literal shorthand.
    pub fn value(value: impl Into<Value>) -> Expr {
        Expr::Value(value.into())
    }

    /// `column IN (v1, v2, …)` over literal values.
    pub fn col_in_values(column: &str, values: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(Expr::col(column)),
            list: values.into_iter().map(Expr::Value).collect(),
            negated: false,
        }
    }

    /// Conjoin a list of predicates (`None` for the empty list).
    pub fn conjunction(mut predicates: Vec<Expr>) -> Option<Expr> {
        let first = if predicates.is_empty() {
            return None;
        } else {
            predicates.remove(0)
        };
        Some(predicates.into_iter().fold(first, Expr::and))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_of_none_is_none() {
        assert_eq!(Expr::conjunction(vec![]), None);
    }

    #[test]
    fn conjunction_of_one_is_identity() {
        let e = Expr::eq(Expr::col("id"), Expr::value(6i64));
        assert_eq!(Expr::conjunction(vec![e.clone()]), Some(e));
    }

    #[test]
    fn conjunction_folds_left() {
        let a = Expr::eq(Expr::col("a"), Expr::value(1i64));
        let b = Expr::eq(Expr::col("b"), Expr::value(2i64));
        let c = Expr::eq(Expr::col("c"), Expr::value(3i64));
        let all = Expr::conjunction(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        assert_eq!(all, Expr::and(Expr::and(a, b), c));
    }

    #[test]
    fn binding_prefers_alias() {
        let t = TableRef {
            table: "author".into(),
            alias: Some("a".into()),
        };
        assert_eq!(t.binding(), "a");
        let t = TableRef {
            table: "author".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "author");
    }

    #[test]
    fn target_table() {
        let s = Statement::Delete(DeleteStmt {
            table: "author".into(),
            where_clause: None,
        });
        assert_eq!(s.target_table(), Some("author"));
    }
}
