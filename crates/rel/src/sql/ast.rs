//! SQL DML abstract syntax tree.
//!
//! Covers exactly the DML the OntoAccess translator emits (paper §5):
//! `INSERT INTO … VALUES`, `UPDATE … SET … WHERE`, `DELETE FROM … WHERE`,
//! and `SELECT [DISTINCT] … FROM t1 a1, t2 a2, … WHERE …` with
//! conjunctive/disjunctive comparison predicates.

use crate::value::Value;

/// Any DML statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `INSERT INTO table (columns) VALUES (values)`.
    Insert(InsertStmt),
    /// `UPDATE table SET col = expr, … [WHERE expr]`.
    Update(UpdateStmt),
    /// `DELETE FROM table [WHERE expr]`.
    Delete(DeleteStmt),
    /// `SELECT [DISTINCT] items FROM tables [WHERE expr]`.
    Select(SelectStmt),
}

impl Statement {
    /// The table a DML statement targets (`None` for SELECT).
    pub fn target_table(&self) -> Option<&str> {
        match self {
            Statement::Insert(s) => Some(&s.table),
            Statement::Update(s) => Some(&s.table),
            Statement::Delete(s) => Some(&s.table),
            Statement::Select(_) => None,
        }
    }
}

/// `INSERT INTO table (columns) VALUES (values)`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Column names, parallel to `values`.
    pub columns: Vec<String>,
    /// Literal values.
    pub values: Vec<Value>,
}

/// `UPDATE table SET assignments [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `column = expr` pairs.
    pub assignments: Vec<(String, Expr)>,
    /// Row filter (absent = all rows).
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM table [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Row filter (absent = all rows).
    pub where_clause: Option<Expr>,
}

/// `SELECT [DISTINCT] items FROM tables [WHERE predicate]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Deduplicate result rows.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Cross-joined table references (join conditions live in the WHERE
    /// clause — the classic SPARQL-to-SQL output shape).
    pub from: Vec<TableRef>,
    /// Row filter.
    pub where_clause: Option<Expr>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (`FROM author a` → `a`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this reference binds in scope (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// `expr [AS alias]`.
    Expr {
        /// Projected expression.
        expr: Expr,
        /// Output column name.
        alias: Option<String>,
    },
}

/// A column reference, optionally qualified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Qualifier (table name or alias).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Scalar/boolean expressions with SQL three-valued logic.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Value(Value),
    /// Column reference.
    Column(ColumnRef),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
}

impl Expr {
    /// `left = right`.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    /// `left AND right`.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    /// `left OR right`.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Or, left, right)
    }

    /// Generic binary node.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Column reference shorthand.
    pub fn col(column: &str) -> Expr {
        Expr::Column(ColumnRef::bare(column))
    }

    /// Qualified column reference shorthand.
    pub fn qcol(table: &str, column: &str) -> Expr {
        Expr::Column(ColumnRef::qualified(table, column))
    }

    /// Literal shorthand.
    pub fn value(value: impl Into<Value>) -> Expr {
        Expr::Value(value.into())
    }

    /// Conjoin a list of predicates (`None` for the empty list).
    pub fn conjunction(mut predicates: Vec<Expr>) -> Option<Expr> {
        let first = if predicates.is_empty() {
            return None;
        } else {
            predicates.remove(0)
        };
        Some(predicates.into_iter().fold(first, Expr::and))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunction_of_none_is_none() {
        assert_eq!(Expr::conjunction(vec![]), None);
    }

    #[test]
    fn conjunction_of_one_is_identity() {
        let e = Expr::eq(Expr::col("id"), Expr::value(6i64));
        assert_eq!(Expr::conjunction(vec![e.clone()]), Some(e));
    }

    #[test]
    fn conjunction_folds_left() {
        let a = Expr::eq(Expr::col("a"), Expr::value(1i64));
        let b = Expr::eq(Expr::col("b"), Expr::value(2i64));
        let c = Expr::eq(Expr::col("c"), Expr::value(3i64));
        let all = Expr::conjunction(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        assert_eq!(all, Expr::and(Expr::and(a, b), c));
    }

    #[test]
    fn binding_prefers_alias() {
        let t = TableRef {
            table: "author".into(),
            alias: Some("a".into()),
        };
        assert_eq!(t.binding(), "a");
        let t = TableRef {
            table: "author".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "author");
    }

    #[test]
    fn target_table() {
        let s = Statement::Delete(DeleteStmt {
            table: "author".into(),
            where_clause: None,
        });
        assert_eq!(s.target_table(), Some("author"));
    }
}
