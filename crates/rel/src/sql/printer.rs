//! SQL rendering — produces the exact textual style of the paper's
//! listings (e.g. Listing 10: `INSERT INTO author (id, title, firstname,
//! lastname, email, team) VALUES (6, 'Mr', 'Matthias', 'Hert',
//! 'hert@ifi.uzh.ch', 5);`), so translated statements can be compared
//! against the paper verbatim. Statements render with a trailing `;`.

use crate::sql::ast::{
    BinOp, BulkUpdateStmt, DeleteStmt, Expr, InsertStmt, SelectItem, SelectStmt, Statement,
    TableRef, UpdateStmt,
};
use std::fmt;

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Insert(s) => s.fmt(f),
            Statement::Update(s) => s.fmt(f),
            Statement::BulkUpdate(s) => s.fmt(f),
            Statement::Delete(s) => s.fmt(f),
            Statement::Select(s) => s.fmt(f),
        }
    }
}

// `a, b, …` — streams straight into the formatter. The grouped-DML
// emit path renders statements with thousands of tuples; collecting
// each into a `Vec<String>` to `join` doubled the allocation traffic.
fn fmt_separated<T: fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    items: impl IntoIterator<Item = T>,
) -> fmt::Result {
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

// `(v1, v2, …)`.
fn fmt_tuple(f: &mut fmt::Formatter<'_>, values: &[crate::value::Value]) -> fmt::Result {
    f.write_str("(")?;
    fmt_separated(f, values)?;
    f.write_str(")")
}

impl fmt::Display for InsertStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {} (", self.table)?;
        fmt_separated(f, &self.columns)?;
        f.write_str(") VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            fmt_tuple(f, row)?;
        }
        write!(f, ";")
    }
}

impl fmt::Display for BulkUpdateStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} BY (", self.table)?;
        fmt_separated(f, &self.key_columns)?;
        f.write_str(") SET (")?;
        fmt_separated(f, &self.set_columns)?;
        f.write_str(") VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            // Key then set values, one tuple, no flattening allocation.
            f.write_str("(")?;
            fmt_separated(f, row.key.iter().chain(row.set.iter()))?;
            f.write_str(")")?;
        }
        write!(f, ";")
    }
}

struct Assignment<'a>(&'a (String, Expr));

impl fmt::Display for Assignment<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (col, expr) = self.0;
        write!(f, "{col} = {expr}")
    }
}

impl fmt::Display for UpdateStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        fmt_separated(f, self.assignments.iter().map(Assignment))?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        write!(f, ";")
    }
}

impl fmt::Display for DeleteStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        write!(f, ";")
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        fmt_separated(f, &self.items)?;
        f.write_str(" FROM ")?;
        fmt_separated(f, &self.from)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        write!(f, ";")
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(alias) => write!(f, "{} {}", self.table, alias),
            None => write!(f, "{}", self.table),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Star => write!(f, "*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

// Precedence for parenthesization: OR < AND < NOT < comparison < primary.
fn precedence(expr: &Expr) -> u8 {
    match expr {
        Expr::Binary { op: BinOp::Or, .. } => 1,
        Expr::Binary { op: BinOp::And, .. } => 2,
        Expr::Not(_) => 3,
        Expr::Binary { .. } => 4,
        Expr::IsNull { .. } => 4,
        Expr::InList { .. } => 4,
        Expr::Value(_) | Expr::Column(_) => 5,
    }
}

fn fmt_child(f: &mut fmt::Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if precedence(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Value(v) => write!(f, "{v}"),
            Expr::Column(c) => match &c.table {
                Some(t) => write!(f, "{t}.{}", c.column),
                None => write!(f, "{}", c.column),
            },
            Expr::Binary { op, left, right } => {
                let prec = precedence(self);
                fmt_child(f, left, prec)?;
                write!(f, " {op} ")?;
                fmt_child(f, right, prec)
            }
            Expr::Not(inner) => {
                write!(f, "NOT ")?;
                fmt_child(f, inner, precedence(self))
            }
            Expr::IsNull { expr, negated } => {
                fmt_child(f, expr, precedence(self))?;
                if *negated {
                    write!(f, " IS NOT NULL")
                } else {
                    write!(f, " IS NULL")
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                fmt_child(f, expr, precedence(self))?;
                if *negated {
                    write!(f, " NOT IN (")?;
                } else {
                    write!(f, " IN (")?;
                }
                fmt_separated(f, list)?;
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn insert_matches_listing_10_style() {
        let stmt = InsertStmt::single(
            "author",
            vec![
                "id".into(),
                "title".into(),
                "firstname".into(),
                "lastname".into(),
                "email".into(),
                "team".into(),
            ],
            vec![
                Value::Int(6),
                Value::text("Mr"),
                Value::text("Matthias"),
                Value::text("Hert"),
                Value::text("hert@ifi.uzh.ch"),
                Value::Int(5),
            ],
        );
        assert_eq!(
            stmt.to_string(),
            "INSERT INTO author (id, title, firstname, lastname, email, team) \
             VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);"
        );
    }

    #[test]
    fn multi_row_insert_renders_tuples() {
        let stmt = InsertStmt {
            table: "team".into(),
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                vec![Value::Int(4), Value::text("DBTG")],
                vec![Value::Int(5), Value::text("SEAL")],
            ],
        };
        assert_eq!(
            stmt.to_string(),
            "INSERT INTO team (id, name) VALUES (4, 'DBTG'), (5, 'SEAL');"
        );
    }

    #[test]
    fn bulk_update_renders_keys_then_sets() {
        use crate::sql::ast::{BulkRow, BulkUpdateStmt};
        let stmt = BulkUpdateStmt {
            table: "author".into(),
            key_columns: vec!["id".into(), "email".into()],
            set_columns: vec!["email".into()],
            rows: vec![
                BulkRow {
                    key: vec![Value::Int(6), Value::text("a@x.ch")],
                    set: vec![Value::Null],
                },
                BulkRow {
                    key: vec![Value::Int(7), Value::text("b@x.ch")],
                    set: vec![Value::Null],
                },
            ],
        };
        assert_eq!(
            stmt.to_string(),
            "UPDATE author BY (id, email) SET (email) \
             VALUES (6, 'a@x.ch', NULL), (7, 'b@x.ch', NULL);"
        );
    }

    #[test]
    fn in_list_renders() {
        let e = Expr::col_in_values("id", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(e.to_string(), "id IN (1, 2)");
        let neg = Expr::InList {
            expr: Box::new(Expr::col("id")),
            list: vec![Expr::value(1i64)],
            negated: true,
        };
        assert_eq!(neg.to_string(), "id NOT IN (1)");
    }

    #[test]
    fn update_matches_listing_18_style() {
        let stmt = UpdateStmt {
            table: "author".into(),
            assignments: vec![("email".into(), Expr::Value(Value::Null))],
            where_clause: Some(Expr::and(
                Expr::eq(Expr::col("id"), Expr::value(6i64)),
                Expr::eq(Expr::col("email"), Expr::value("hert@ifi.uzh.ch")),
            )),
        };
        assert_eq!(
            stmt.to_string(),
            "UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';"
        );
    }

    #[test]
    fn delete_renders() {
        let stmt = DeleteStmt {
            table: "author".into(),
            where_clause: Some(Expr::eq(Expr::col("id"), Expr::value(6i64))),
        };
        assert_eq!(stmt.to_string(), "DELETE FROM author WHERE id = 6;");
    }

    #[test]
    fn select_with_aliases_and_join_condition() {
        let stmt = SelectStmt {
            distinct: true,
            items: vec![
                SelectItem::Expr {
                    expr: Expr::qcol("a", "id"),
                    alias: Some("x".into()),
                },
                SelectItem::Expr {
                    expr: Expr::qcol("a", "email"),
                    alias: None,
                },
            ],
            from: vec![
                TableRef {
                    table: "author".into(),
                    alias: Some("a".into()),
                },
                TableRef {
                    table: "team".into(),
                    alias: Some("t".into()),
                },
            ],
            where_clause: Some(Expr::eq(Expr::qcol("a", "team"), Expr::qcol("t", "id"))),
        };
        assert_eq!(
            stmt.to_string(),
            "SELECT DISTINCT a.id AS x, a.email FROM author a, team t WHERE a.team = t.id;"
        );
    }

    #[test]
    fn or_under_and_is_parenthesized() {
        let or = Expr::or(
            Expr::eq(Expr::col("a"), Expr::value(1i64)),
            Expr::eq(Expr::col("b"), Expr::value(2i64)),
        );
        let and = Expr::and(or, Expr::eq(Expr::col("c"), Expr::value(3i64)));
        assert_eq!(and.to_string(), "(a = 1 OR b = 2) AND c = 3");
    }

    #[test]
    fn and_under_or_is_not_parenthesized() {
        let and = Expr::and(
            Expr::eq(Expr::col("a"), Expr::value(1i64)),
            Expr::eq(Expr::col("b"), Expr::value(2i64)),
        );
        let or = Expr::or(and, Expr::eq(Expr::col("c"), Expr::value(3i64)));
        assert_eq!(or.to_string(), "a = 1 AND b = 2 OR c = 3");
    }

    #[test]
    fn is_null_renders() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("email")),
            negated: false,
        };
        assert_eq!(e.to_string(), "email IS NULL");
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("email")),
            negated: true,
        };
        assert_eq!(e.to_string(), "email IS NOT NULL");
    }

    #[test]
    fn quoted_string_escaping() {
        let stmt = DeleteStmt {
            table: "t".into(),
            where_clause: Some(Expr::eq(Expr::col("name"), Expr::value("O'Brien"))),
        };
        assert_eq!(stmt.to_string(), "DELETE FROM t WHERE name = 'O''Brien';");
    }

    #[test]
    fn select_star() {
        let stmt = SelectStmt {
            distinct: false,
            items: vec![SelectItem::Star],
            from: vec![TableRef {
                table: "team".into(),
                alias: None,
            }],
            where_clause: None,
        };
        assert_eq!(stmt.to_string(), "SELECT * FROM team;");
    }
}
