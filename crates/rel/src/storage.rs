//! Row storage for one table: heap of rows plus primary-key, unique,
//! and secondary (non-unique) indexes.
//!
//! Every map here is a persistent [`PMap`]: cloning a [`TableData`] is
//! O(#indexes) `Arc` clones, which is what makes publishing an immutable
//! database version per commit affordable (see [`crate::pmap`]). The
//! writer mutates its own copy in place; shared nodes are path-copied
//! on first touch, so published snapshots never observe a mutation.

use crate::pmap::PMap;
use crate::schema::Table;
use crate::value::{IndexKey, Value};
use std::collections::HashMap;

/// Identifier of a stored row, unique within its table for the lifetime
/// of the database.
pub type RowId = u64;

/// Storage for one table.
#[derive(Debug, Clone, Default)]
pub struct TableData {
    rows: PMap<RowId, Vec<Value>>,
    /// PK values → row id. Empty key vec when the table has no PK.
    pk_index: PMap<Vec<IndexKey>, RowId>,
    /// Per unique column: value → row id (NULLs excluded, as in SQL).
    unique_indexes: HashMap<String, PMap<IndexKey, RowId>>,
    /// Per indexed column: value → row ids (non-unique; NULLs excluded).
    /// Declared FK columns are indexed automatically; the planner and
    /// [`Database::create_index`](crate::Database::create_index) add
    /// further join columns. Id lists are kept in ascending row-id
    /// order so index-backed plans enumerate rows deterministically.
    secondary_indexes: HashMap<String, PMap<IndexKey, Vec<RowId>>>,
    next_row_id: RowId,
}

impl TableData {
    /// Empty storage with unique indexes prepared from the table schema
    /// and secondary indexes on every declared foreign-key column (the
    /// join columns the SPARQL translation produces).
    pub fn for_table(table: &Table) -> Self {
        let mut data = TableData::default();
        for column in &table.columns {
            if column.unique {
                data.unique_indexes.insert(column.name.clone(), PMap::new());
            }
        }
        for fk in &table.foreign_keys {
            let covered = table.column(&fk.column).is_some_and(|c| c.unique)
                || (table.primary_key.len() == 1 && table.primary_key[0] == fk.column);
            // DOUBLE columns are never probed (index keys cannot express
            // SQL equality for them), so indexing one would cost
            // maintenance forever without ever being read.
            let probeable = table
                .column(&fk.column)
                .is_some_and(|c| c.ty != crate::value::SqlType::Double);
            if !covered && probeable {
                data.secondary_indexes
                    .insert(fk.column.clone(), PMap::new());
            }
        }
        data
    }

    /// Build (idempotently) a secondary index on `column`.
    pub fn create_index(&mut self, table: &Table, column: &str) {
        if self.secondary_indexes.contains_key(column) {
            return;
        }
        let idx = table
            .column_index(column)
            .expect("caller verified column exists");
        let mut index: PMap<IndexKey, Vec<RowId>> = PMap::new();
        for (row_id, row) in self.rows.iter() {
            if !row[idx].is_null() {
                let key = row[idx].index_key();
                match index.get_mut(&key) {
                    // Rows iterate in ascending id order, so pushing
                    // keeps each posting list sorted.
                    Some(ids) => ids.push(*row_id),
                    None => {
                        index.insert(key, vec![*row_id]);
                    }
                }
            }
        }
        self.secondary_indexes.insert(column.to_owned(), index);
    }

    /// Whether a secondary index exists on `column`.
    pub fn has_index(&self, column: &str) -> bool {
        self.secondary_indexes.contains_key(column)
    }

    /// Row ids holding `key` in the secondary index on `column`
    /// (ascending). `None` when no such index exists; an empty slice
    /// when the index exists but holds no match.
    pub fn lookup_by_index(&self, column: &str, key: &IndexKey) -> Option<&[RowId]> {
        let index = self.secondary_indexes.get(column)?;
        Some(index.get(key).map_or(&[][..], Vec::as_slice))
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate `(row_id, row)` in insertion (row id) order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Vec<Value>)> {
        self.rows.iter().map(|(id, row)| (*id, row))
    }

    /// Fetch one row.
    pub fn row(&self, row_id: RowId) -> Option<&Vec<Value>> {
        self.rows.get(&row_id)
    }

    /// Row id holding the given primary key, if present.
    pub fn find_by_pk(&self, key: &[IndexKey]) -> Option<RowId> {
        self.pk_index.get(key).copied()
    }

    /// Row id holding `value` in the unique column `column`, if present.
    pub fn find_by_unique(&self, column: &str, key: &IndexKey) -> Option<RowId> {
        self.unique_indexes.get(column)?.get(key).copied()
    }

    /// Store a row that has already passed constraint checking.
    /// Returns the new row id.
    pub fn insert_unchecked(&mut self, table: &Table, row: Vec<Value>) -> RowId {
        let row_id = self.next_row_id;
        self.next_row_id += 1;
        self.index_row(table, row_id, &row);
        self.rows.insert(row_id, row);
        row_id
    }

    /// Re-insert a row under its original id (transaction rollback of a
    /// delete). Does not advance the row-id allocator: the id was
    /// allocated by the insert being undone around.
    pub fn restore_unchecked(&mut self, table: &Table, row_id: RowId, row: Vec<Value>) {
        self.index_row(table, row_id, &row);
        self.rows.insert(row_id, row);
    }

    /// Store a row under an explicitly recorded id, advancing the
    /// allocator past it (durability replay of a logged insert: the id
    /// must match the original run so recovered state is byte-identical
    /// and later inserts allocate the same ids).
    pub fn insert_at_unchecked(&mut self, table: &Table, row_id: RowId, row: Vec<Value>) {
        self.index_row(table, row_id, &row);
        self.rows.insert(row_id, row);
        self.next_row_id = self.next_row_id.max(row_id + 1);
    }

    /// The id the next [`TableData::insert_unchecked`] will assign.
    pub fn next_row_id(&self) -> RowId {
        self.next_row_id
    }

    /// Unwind the allocation of `row_id` (transaction rollback of an
    /// insert). Rollback processes its log newest-first, so the last
    /// unwound insert leaves the allocator exactly where the
    /// transaction found it — ids are not burned by rolled-back work,
    /// which keeps the live allocator byte-identical to what crash
    /// recovery (snapshot + committed-WAL replay) reproduces.
    pub fn unallocate_row_id(&mut self, row_id: RowId) {
        self.next_row_id = self.next_row_id.min(row_id);
    }

    /// Force the row-id allocator (snapshot restore). Clamped so it
    /// never re-issues an id a stored row already holds.
    pub fn set_next_row_id(&mut self, next: RowId) {
        let floor = self
            .rows
            .last_key_value()
            .map_or(0, |(max_id, _)| max_id + 1);
        self.next_row_id = next.max(floor);
    }

    /// Columns carrying a secondary index, sorted (snapshot state).
    pub fn secondary_index_columns(&self) -> Vec<String> {
        let mut columns: Vec<String> = self.secondary_indexes.keys().cloned().collect();
        columns.sort();
        columns
    }

    /// Replace a row's values (already constraint-checked), fixing
    /// indexes. Returns the previous values.
    pub fn update_unchecked(
        &mut self,
        table: &Table,
        row_id: RowId,
        new_row: Vec<Value>,
    ) -> Option<Vec<Value>> {
        let old = self.rows.get(&row_id)?.clone();
        self.unindex_row(table, row_id, &old);
        self.index_row(table, row_id, &new_row);
        self.rows.insert(row_id, new_row);
        Some(old)
    }

    /// Remove a row (already constraint-checked), fixing indexes.
    /// Returns the removed values.
    pub fn delete_unchecked(&mut self, table: &Table, row_id: RowId) -> Option<Vec<Value>> {
        let row = self.rows.remove(&row_id)?;
        self.unindex_row(table, row_id, &row);
        Some(row)
    }

    /// Primary-key values of `row` as index keys (empty when no PK).
    pub fn pk_key(table: &Table, row: &[Value]) -> Vec<IndexKey> {
        table
            .primary_key_indices()
            .iter()
            .map(|&i| row[i].index_key())
            .collect()
    }

    fn index_row(&mut self, table: &Table, row_id: RowId, row: &[Value]) {
        if !table.primary_key.is_empty() {
            self.pk_index.insert(Self::pk_key(table, row), row_id);
        }
        for (column, index) in &mut self.unique_indexes {
            let i = table
                .column_index(column)
                .expect("unique index built from schema");
            if !row[i].is_null() {
                index.insert(row[i].index_key(), row_id);
            }
        }
        for (column, index) in &mut self.secondary_indexes {
            let i = table
                .column_index(column)
                .expect("secondary index built from schema");
            if !row[i].is_null() {
                let key = row[i].index_key();
                match index.get_mut(&key) {
                    Some(ids) => {
                        // Restores after rollback can re-add a low id
                        // after higher ones; keep ascending order.
                        let pos = ids.partition_point(|&id| id < row_id);
                        ids.insert(pos, row_id);
                    }
                    None => {
                        index.insert(key, vec![row_id]);
                    }
                }
            }
        }
    }

    fn unindex_row(&mut self, table: &Table, row_id: RowId, row: &[Value]) {
        if !table.primary_key.is_empty() {
            self.pk_index.remove(&Self::pk_key(table, row));
        }
        for (column, index) in &mut self.unique_indexes {
            let i = table
                .column_index(column)
                .expect("unique index built from schema");
            if !row[i].is_null() {
                index.remove(&row[i].index_key());
            }
        }
        for (column, index) in &mut self.secondary_indexes {
            let i = table
                .column_index(column)
                .expect("secondary index built from schema");
            if row[i].is_null() {
                continue;
            }
            let key = row[i].index_key();
            let now_empty = match index.get_mut(&key) {
                Some(ids) => {
                    ids.retain(|&id| id != row_id);
                    ids.is_empty()
                }
                None => false,
            };
            if now_empty {
                index.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Table};
    use crate::value::SqlType;

    fn table() -> Table {
        Table::builder("t")
            .column(Column::new("id", SqlType::Integer).not_null())
            .column(Column::new("code", SqlType::Varchar).unique())
            .primary_key(&["id"])
            .build()
    }

    #[test]
    fn insert_and_lookup() {
        let t = table();
        let mut data = TableData::for_table(&t);
        let id = data.insert_unchecked(&t, vec![Value::Int(1), Value::text("A")]);
        assert_eq!(data.len(), 1);
        assert_eq!(data.find_by_pk(&[Value::Int(1).index_key()]), Some(id));
        assert_eq!(
            data.find_by_unique("code", &Value::text("A").index_key()),
            Some(id)
        );
    }

    #[test]
    fn update_moves_index_entries() {
        let t = table();
        let mut data = TableData::for_table(&t);
        let id = data.insert_unchecked(&t, vec![Value::Int(1), Value::text("A")]);
        let old = data
            .update_unchecked(&t, id, vec![Value::Int(2), Value::text("B")])
            .unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(data.find_by_pk(&[Value::Int(1).index_key()]), None);
        assert_eq!(data.find_by_pk(&[Value::Int(2).index_key()]), Some(id));
        assert_eq!(
            data.find_by_unique("code", &Value::text("A").index_key()),
            None
        );
        assert_eq!(
            data.find_by_unique("code", &Value::text("B").index_key()),
            Some(id)
        );
    }

    #[test]
    fn delete_clears_indexes() {
        let t = table();
        let mut data = TableData::for_table(&t);
        let id = data.insert_unchecked(&t, vec![Value::Int(1), Value::text("A")]);
        let row = data.delete_unchecked(&t, id).unwrap();
        assert_eq!(row[1], Value::text("A"));
        assert!(data.is_empty());
        assert_eq!(data.find_by_pk(&[Value::Int(1).index_key()]), None);
    }

    #[test]
    fn nulls_not_in_unique_index() {
        let t = table();
        let mut data = TableData::for_table(&t);
        data.insert_unchecked(&t, vec![Value::Int(1), Value::Null]);
        data.insert_unchecked(&t, vec![Value::Int(2), Value::Null]);
        assert_eq!(data.len(), 2);
        assert_eq!(data.find_by_unique("code", &Value::Null.index_key()), None);
    }

    #[test]
    fn restore_reuses_row_id() {
        let t = table();
        let mut data = TableData::for_table(&t);
        let id = data.insert_unchecked(&t, vec![Value::Int(1), Value::text("A")]);
        let row = data.delete_unchecked(&t, id).unwrap();
        data.restore_unchecked(&t, id, row);
        assert_eq!(data.find_by_pk(&[Value::Int(1).index_key()]), Some(id));
    }

    #[test]
    fn secondary_index_tracks_mutations() {
        let t = table();
        let mut data = TableData::for_table(&t);
        data.create_index(&t, "code");
        assert!(data.has_index("code"));
        let r1 = data.insert_unchecked(&t, vec![Value::Int(1), Value::text("A")]);
        let r2 = data.insert_unchecked(&t, vec![Value::Int(2), Value::text("A")]);
        assert_eq!(
            data.lookup_by_index("code", &Value::text("A").index_key()),
            Some(&[r1, r2][..])
        );
        data.update_unchecked(&t, r1, vec![Value::Int(1), Value::text("B")])
            .unwrap();
        assert_eq!(
            data.lookup_by_index("code", &Value::text("A").index_key()),
            Some(&[r2][..])
        );
        assert_eq!(
            data.lookup_by_index("code", &Value::text("B").index_key()),
            Some(&[r1][..])
        );
        data.delete_unchecked(&t, r2).unwrap();
        assert_eq!(
            data.lookup_by_index("code", &Value::text("A").index_key()),
            Some(&[][..])
        );
        assert_eq!(
            data.lookup_by_index("absent", &Value::Int(1).index_key()),
            None
        );
    }

    #[test]
    fn secondary_index_built_over_existing_rows_and_skips_nulls() {
        let t = table();
        let mut data = TableData::for_table(&t);
        let r1 = data.insert_unchecked(&t, vec![Value::Int(1), Value::text("A")]);
        data.insert_unchecked(&t, vec![Value::Int(2), Value::Null]);
        data.create_index(&t, "code");
        assert_eq!(
            data.lookup_by_index("code", &Value::text("A").index_key()),
            Some(&[r1][..])
        );
        assert_eq!(
            data.lookup_by_index("code", &Value::Null.index_key()),
            Some(&[][..])
        );
    }

    #[test]
    fn restore_keeps_secondary_index_sorted() {
        let t = table();
        let mut data = TableData::for_table(&t);
        data.create_index(&t, "code");
        let r1 = data.insert_unchecked(&t, vec![Value::Int(1), Value::text("A")]);
        let r2 = data.insert_unchecked(&t, vec![Value::Int(2), Value::text("A")]);
        let row = data.delete_unchecked(&t, r1).unwrap();
        data.restore_unchecked(&t, r1, row);
        assert_eq!(
            data.lookup_by_index("code", &Value::text("A").index_key()),
            Some(&[r1, r2][..])
        );
    }

    #[test]
    fn fk_columns_are_indexed_automatically() {
        let referencing = Table::builder("child")
            .column(Column::new("id", SqlType::Integer).not_null())
            .column(Column::new("parent", SqlType::Integer))
            .primary_key(&["id"])
            .foreign_key("parent", "t", "id")
            .build();
        let data = TableData::for_table(&referencing);
        assert!(data.has_index("parent"));
    }

    #[test]
    fn scan_in_row_id_order() {
        let t = table();
        let mut data = TableData::for_table(&t);
        data.insert_unchecked(&t, vec![Value::Int(3), Value::Null]);
        data.insert_unchecked(&t, vec![Value::Int(1), Value::Null]);
        let ids: Vec<RowId> = data.scan().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
