//! Error type for the relational engine.
//!
//! Constraint violations carry structured payloads (table, column,
//! offending value) because OntoAccess's feedback protocol (paper §3/§8)
//! turns them into semantically rich client-facing RDF documents.

use crate::value::Value;
use std::fmt;

/// Convenience result alias.
pub type RelResult<T> = Result<T, RelError>;

/// Everything that can go wrong inside the relational engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// Schema assembly: duplicate table name.
    DuplicateTable {
        /// Offending table.
        table: String,
    },
    /// Referenced table does not exist.
    NoSuchTable {
        /// Requested table.
        table: String,
    },
    /// Referenced column does not exist.
    NoSuchColumn {
        /// Table searched.
        table: String,
        /// Requested column.
        column: String,
    },
    /// Schema failed validation.
    SchemaInvalid {
        /// Explanation.
        message: String,
    },
    /// A value does not fit the column type.
    TypeMismatch {
        /// Table.
        table: String,
        /// Column.
        column: String,
        /// Declared type, rendered.
        expected: String,
        /// Offending value.
        value: Value,
    },
    /// NOT NULL constraint violated.
    NotNullViolation {
        /// Table.
        table: String,
        /// Column.
        column: String,
    },
    /// Primary key uniqueness violated.
    PrimaryKeyViolation {
        /// Table.
        table: String,
        /// Rendered key values.
        key: String,
    },
    /// UNIQUE constraint violated.
    UniqueViolation {
        /// Table.
        table: String,
        /// Column.
        column: String,
        /// Offending value.
        value: Value,
    },
    /// Foreign key has no matching referenced row.
    ForeignKeyViolation {
        /// Referencing table.
        table: String,
        /// Referencing column.
        column: String,
        /// Referenced table.
        ref_table: String,
        /// Value with no match.
        value: Value,
    },
    /// CHECK constraint violated.
    CheckViolation {
        /// Table.
        table: String,
        /// Constraint name.
        name: String,
        /// Rendered predicate.
        predicate: String,
    },
    /// Deleting/updating a row would orphan referencing rows (RESTRICT).
    RestrictViolation {
        /// Table whose row is being removed.
        table: String,
        /// Table still referencing it.
        referencing_table: String,
        /// Referencing column.
        referencing_column: String,
        /// The referenced key value.
        value: Value,
    },
    /// SQL text could not be parsed.
    SqlParse {
        /// Explanation with position.
        message: String,
    },
    /// Statement is structurally invalid for execution (e.g. column count
    /// mismatch in INSERT).
    Execution {
        /// Explanation.
        message: String,
    },
    /// Operation requires an open transaction or conflicts with one.
    Transaction {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::DuplicateTable { table } => write!(f, "duplicate table {table:?}"),
            RelError::NoSuchTable { table } => write!(f, "no such table {table:?}"),
            RelError::NoSuchColumn { table, column } => {
                write!(f, "no such column {table}.{column}")
            }
            RelError::SchemaInvalid { message } => write!(f, "invalid schema: {message}"),
            RelError::TypeMismatch {
                table,
                column,
                expected,
                value,
            } => write!(
                f,
                "type mismatch: {table}.{column} is {expected}, got {value}"
            ),
            RelError::NotNullViolation { table, column } => {
                write!(f, "NOT NULL violation: {table}.{column}")
            }
            RelError::PrimaryKeyViolation { table, key } => {
                write!(f, "primary key violation in {table}: key {key} already exists")
            }
            RelError::UniqueViolation {
                table,
                column,
                value,
            } => write!(f, "unique violation: {table}.{column} = {value}"),
            RelError::ForeignKeyViolation {
                table,
                column,
                ref_table,
                value,
            } => write!(
                f,
                "foreign key violation: {table}.{column} = {value} has no match in {ref_table}"
            ),
            RelError::CheckViolation {
                table,
                name,
                predicate,
            } => write!(
                f,
                "check violation: constraint {name:?} on {table} requires {predicate}"
            ),
            RelError::RestrictViolation {
                table,
                referencing_table,
                referencing_column,
                value,
            } => write!(
                f,
                "restrict violation: row in {table} is still referenced by {referencing_table}.{referencing_column} = {value}"
            ),
            RelError::SqlParse { message } => write!(f, "SQL parse error: {message}"),
            RelError::Execution { message } => write!(f, "execution error: {message}"),
            RelError::Transaction { message } => write!(f, "transaction error: {message}"),
        }
    }
}

impl std::error::Error for RelError {}

impl RelError {
    /// Whether this error is an integrity-constraint violation (the class
    /// of errors the paper's checker is designed to catch *before*
    /// touching the database).
    pub fn is_constraint_violation(&self) -> bool {
        matches!(
            self,
            RelError::NotNullViolation { .. }
                | RelError::PrimaryKeyViolation { .. }
                | RelError::UniqueViolation { .. }
                | RelError::ForeignKeyViolation { .. }
                | RelError::CheckViolation { .. }
                | RelError::RestrictViolation { .. }
                | RelError::TypeMismatch { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = RelError::ForeignKeyViolation {
            table: "author".into(),
            column: "team".into(),
            ref_table: "team".into(),
            value: Value::Int(5),
        };
        let msg = err.to_string();
        assert!(msg.contains("author.team"));
        assert!(msg.contains('5'));
        assert!(msg.contains("team"));
    }

    #[test]
    fn constraint_classification() {
        assert!(RelError::NotNullViolation {
            table: "t".into(),
            column: "c".into()
        }
        .is_constraint_violation());
        assert!(!RelError::SqlParse {
            message: "x".into()
        }
        .is_constraint_violation());
    }
}
