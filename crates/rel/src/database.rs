//! The database: schema + storage + transactional row operations with
//! immediate constraint checking.
//!
//! The paper's Algorithm 1 (§5.1) relies on a specific RDB behaviour:
//! *"existing RDB systems check constraints such as referential integrity
//! already during a transaction"*. This engine reproduces that — every
//! row operation checks all constraints immediately, so the order in
//! which translated statements execute matters, exactly as in the paper.

use crate::error::{RelError, RelResult};
use crate::schema::{Schema, Table};
use crate::storage::{RowId, TableData};
use crate::value::{IndexKey, SqlType, Value};
use std::collections::BTreeMap;

// Outcome of converting an equality-probe value into an index key for a
// column of a given type.
enum ProbeKey {
    /// Exact-match key for the column's index.
    Key(IndexKey),
    /// SQL equality can never hold (NULL probe or incompatible types).
    NoMatch,
    /// Index keys cannot express SQL equality for this column (DOUBLE
    /// columns may store Int values whose keys differ from equal
    /// doubles').
    Unsupported,
}

fn probe_key(ty: SqlType, value: &Value) -> ProbeKey {
    match (ty, value) {
        (SqlType::Double, _) => ProbeKey::Unsupported,
        (_, Value::Null) => ProbeKey::NoMatch,
        (SqlType::Integer, Value::Int(i)) => ProbeKey::Key(IndexKey::Int(*i)),
        (SqlType::Integer, Value::Double(d)) => {
            // 2.0 = 2 holds in SQL; 2.5 matches no integer. Above 2^53
            // a double aliases several sql_eq-equal integers (eval
            // casts Int to f64), so exact-key lookup is unsound there —
            // fall back to scanning.
            if d.abs() >= 9_007_199_254_740_992.0 {
                ProbeKey::Unsupported
            } else if d.fract() == 0.0 {
                ProbeKey::Key(IndexKey::Int(*d as i64))
            } else {
                ProbeKey::NoMatch
            }
        }
        (SqlType::Varchar, Value::Text(s)) => ProbeKey::Key(IndexKey::Text(*s)),
        (SqlType::Boolean, Value::Bool(b)) => ProbeKey::Key(IndexKey::Bool(*b)),
        // Remaining combinations compare unequal-typed non-null values:
        // SQL equality is FALSE.
        _ => ProbeKey::NoMatch,
    }
}

// Whether `column` is the table's whole (single-column) primary key.
fn single_column_pk(table: &Table, column: &str) -> bool {
    table.primary_key.len() == 1 && table.primary_key[0] == column
}

/// Matching row ids of an index probe, borrowed from the index (see
/// [`Database::index_probe_ids`]).
#[derive(Debug, Clone, Copy)]
pub enum ProbeIds<'a> {
    /// Answered by a PK or UNIQUE index: at most one row.
    Unique(Option<RowId>),
    /// Answered by a secondary index: ascending id list.
    Many(&'a [RowId]),
}

/// Transaction-log entry: enough to undo the operation (rollback) *and*
/// to redo it (the commit-time [`LogicalOp`] stream durability appends
/// to its write-ahead log).
#[derive(Debug, Clone)]
enum UndoOp {
    Insert {
        table: String,
        row_id: RowId,
        row: Vec<Value>,
    },
    Update {
        table: String,
        row_id: RowId,
        old: Vec<Value>,
        new: Vec<Value>,
    },
    Delete {
        table: String,
        row_id: RowId,
        old: Vec<Value>,
    },
}

impl UndoOp {
    // The redo view of this log entry.
    fn to_logical(&self) -> LogicalOp {
        match self {
            UndoOp::Insert { table, row_id, row } => LogicalOp::Insert {
                table: table.clone(),
                row_id: *row_id,
                row: row.clone(),
            },
            UndoOp::Update {
                table, row_id, new, ..
            } => LogicalOp::Update {
                table: table.clone(),
                row_id: *row_id,
                row: new.clone(),
            },
            UndoOp::Delete { table, row_id, .. } => LogicalOp::Delete {
                table: table.clone(),
                row_id: *row_id,
            },
        }
    }
}

/// One logical row operation a committed transaction applied, in
/// application order, with savepoint-rolled-back work already excluded.
///
/// This is the redo form a durability layer persists: replaying the
/// stream with [`Database::apply_logical`] against the pre-transaction
/// state reproduces the post-commit heap and indexes byte-identically
/// (row ids included). Produced by [`Database::commit_logged`] /
/// [`Database::txn_ops`].
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalOp {
    /// A row was inserted under `row_id` with the given values.
    Insert {
        /// Target table.
        table: String,
        /// The id storage assigned.
        row_id: RowId,
        /// Full row values in column order.
        row: Vec<Value>,
    },
    /// The row `row_id` now holds the given values.
    Update {
        /// Target table.
        table: String,
        /// The updated row's id.
        row_id: RowId,
        /// Full new row values in column order.
        row: Vec<Value>,
    },
    /// The row `row_id` was deleted.
    Delete {
        /// Target table.
        table: String,
        /// The deleted row's id.
        row_id: RowId,
    },
}

/// Handle to a savepoint created by [`Database::savepoint`]. Valid until
/// the savepoint is released, rolled over by a rollback to an earlier
/// mark, or the enclosing transaction ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavepointId(u64);

// One undo mark on the savepoint stack.
#[derive(Debug, Clone)]
struct SavepointMark {
    seq: u64,
    name: String,
    // Undo-log length when the mark was set: rolling back to the mark
    // undoes every log entry at or beyond this position.
    log_at: usize,
}

/// An open transaction: the undo log plus the stack of savepoint marks
/// into it.
#[derive(Debug, Clone, Default)]
struct TxnState {
    log: Vec<UndoOp>,
    savepoints: Vec<SavepointMark>,
}

/// An in-memory relational database.
///
/// Row operations ([`Database::insert`], [`Database::update_row`],
/// [`Database::delete_row`]) enforce every declared constraint before
/// mutating storage. Wrap multiple statements in
/// [`Database::begin`]/[`Database::commit`] to get the atomicity the
/// paper requires for SPARQL/Update operations (§5.1: all statements of
/// one operation run "within the context of one database transaction").
#[derive(Debug, Clone)]
pub struct Database {
    // Arc-shared: the schema is immutable after validation, and sharing
    // it keeps `Database::clone` — the per-commit version publish — at
    // O(tables + indexes) Arc bumps instead of a deep schema copy.
    schema: std::sync::Arc<Schema>,
    data: BTreeMap<String, TableData>,
    txn: Option<TxnState>,
    // Monotonic over the database's lifetime (never reset by begin):
    // a stale SavepointId from an earlier transaction can therefore
    // never alias a later transaction's mark — it just fails to
    // resolve.
    savepoint_seq: u64,
}

impl Database {
    /// Create a database for a validated schema.
    pub fn new(schema: Schema) -> RelResult<Self> {
        schema.validate()?;
        let data = schema
            .tables()
            .map(|t| (t.name.clone(), TableData::for_table(t)))
            .collect();
        Ok(Database {
            schema: std::sync::Arc::new(schema),
            data,
            txn: None,
            savepoint_seq: 0,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows in `table`.
    pub fn row_count(&self, table: &str) -> RelResult<usize> {
        self.schema.table(table)?;
        Ok(self.data[table].len())
    }

    /// Iterate `(row_id, row)` of `table`.
    pub fn scan(&self, table: &str) -> RelResult<impl Iterator<Item = (RowId, &Vec<Value>)>> {
        self.schema.table(table)?;
        Ok(self.data[table].scan())
    }

    /// Fetch one row by id.
    pub fn row(&self, table: &str, row_id: RowId) -> RelResult<Option<&Vec<Value>>> {
        self.schema.table(table)?;
        Ok(self.data[table].row(row_id))
    }

    /// Build (idempotently) a secondary hash index on `table.column`.
    /// The index is maintained through inserts, updates, deletes, and
    /// transaction rollback from then on. A no-op for DOUBLE columns:
    /// [`Database::index_probe`] can never consult such an index (index
    /// keys cannot express SQL equality for them), so building one
    /// would cost maintenance forever without ever being read.
    pub fn create_index(&mut self, table: &str, column: &str) -> RelResult<()> {
        let t = self.schema.table(table)?;
        let col = t.column(column).ok_or_else(|| RelError::NoSuchColumn {
            table: table.to_owned(),
            column: column.to_owned(),
        })?;
        if col.ty == SqlType::Double {
            return Ok(());
        }
        let t = t.clone();
        self.data
            .get_mut(table)
            .expect("schema table has storage")
            .create_index(&t, column);
        Ok(())
    }

    /// Whether equality lookups on `table.column` can be answered from
    /// an index (single-column PK, UNIQUE, or secondary hash index) with
    /// SQL equality semantics. DOUBLE columns are excluded: they may
    /// store integer values, whose index keys differ from the equal
    /// doubles'.
    pub fn supports_index_probe(&self, table: &str, column: &str) -> RelResult<bool> {
        let t = self.schema.table(table)?;
        let Some(col) = t.column(column) else {
            return Ok(false);
        };
        if col.ty == crate::value::SqlType::Double {
            return Ok(false);
        }
        Ok(single_column_pk(t, column) || col.unique || self.data[table].has_index(column))
    }

    /// Row ids whose `column` equals `value` under SQL equality,
    /// answered from the best available index (ascending row-id order).
    /// `Ok(None)` means no index covers the column (callers fall back to
    /// a scan); `Ok(Some(vec![]))` means the lookup ran and matched
    /// nothing — including `value` being NULL, which equals no row.
    pub fn index_probe(
        &self,
        table: &str,
        column: &str,
        value: &Value,
    ) -> RelResult<Option<Vec<RowId>>> {
        Ok(self
            .index_probe_ids(table, column, value)?
            .map(|ids| match ids {
                ProbeIds::Unique(id) => id.into_iter().collect(),
                ProbeIds::Many(ids) => ids.to_vec(),
            }))
    }

    /// Borrowed-result variant of [`Database::index_probe`] for hot
    /// paths (the planner's index nested loop calls this once per outer
    /// row): same semantics, ids borrowed from the index instead of
    /// collected. Probing a VARCHAR column still clones the text to
    /// build its index key; Integer/Boolean probes — the shapes the
    /// SPARQL translation emits — do not allocate.
    pub fn index_probe_ids(
        &self,
        table: &str,
        column: &str,
        value: &Value,
    ) -> RelResult<Option<ProbeIds<'_>>> {
        let t = self.schema.table(table)?;
        let col = t.column(column).ok_or_else(|| RelError::NoSuchColumn {
            table: table.to_owned(),
            column: column.to_owned(),
        })?;
        let key = match probe_key(col.ty, value) {
            ProbeKey::Unsupported => return Ok(None),
            ProbeKey::NoMatch => return Ok(Some(ProbeIds::Many(&[]))),
            ProbeKey::Key(k) => k,
        };
        let data = &self.data[table];
        if single_column_pk(t, column) {
            return Ok(Some(ProbeIds::Unique(data.find_by_pk(&[key]))));
        }
        if col.unique {
            return Ok(Some(ProbeIds::Unique(data.find_by_unique(column, &key))));
        }
        Ok(data.lookup_by_index(column, &key).map(ProbeIds::Many))
    }

    /// Find a row by primary key values (in PK column order).
    pub fn find_by_pk(&self, table: &str, key: &[Value]) -> RelResult<Option<RowId>> {
        let t = self.schema.table(table)?;
        if key.len() != t.primary_key.len() {
            return Err(RelError::Execution {
                message: format!(
                    "primary key of {table} has {} column(s), {} value(s) given",
                    t.primary_key.len(),
                    key.len()
                ),
            });
        }
        let keys: Vec<_> = key.iter().map(Value::index_key).collect();
        Ok(self.data[table].find_by_pk(&keys))
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. Errors if one is already open.
    pub fn begin(&mut self) -> RelResult<()> {
        if self.txn.is_some() {
            return Err(RelError::Transaction {
                message: "transaction already open".into(),
            });
        }
        self.txn = Some(TxnState::default());
        Ok(())
    }

    /// Commit the open transaction (releasing any savepoints still on
    /// its stack). Use [`Database::commit_logged`] to also receive the
    /// logical redo stream; this variant skips materializing it.
    pub fn commit(&mut self) -> RelResult<()> {
        self.txn.take().map(|_| ()).ok_or(RelError::Transaction {
            message: "no open transaction".into(),
        })
    }

    /// Commit the open transaction, returning the logical row operations
    /// it actually applied, in application order. Work undone by a
    /// savepoint rollback is excluded — the stream is exactly what a
    /// durability layer must replay to reproduce this commit.
    pub fn commit_logged(&mut self) -> RelResult<Vec<LogicalOp>> {
        let state = self.txn.take().ok_or(RelError::Transaction {
            message: "no open transaction".into(),
        })?;
        Ok(state.log.iter().map(UndoOp::to_logical).collect())
    }

    /// The logical row operations the open transaction has applied so
    /// far (the commit-time stream of [`Database::commit_logged`],
    /// observed without committing). A durability layer appends these
    /// to its log *before* committing, so a failed append can still
    /// roll the transaction back.
    pub fn txn_ops(&self) -> RelResult<Vec<LogicalOp>> {
        let state = self.txn.as_ref().ok_or(RelError::Transaction {
            message: "no open transaction".into(),
        })?;
        Ok(state.log.iter().map(UndoOp::to_logical).collect())
    }

    /// Whether the open transaction has applied any row operations that
    /// survive to commit (cheap: inspects the undo log's length, without
    /// materializing the logical redo stream the way
    /// [`Database::txn_ops`] does). Errors if no transaction is open.
    pub fn txn_has_changes(&self) -> RelResult<bool> {
        let state = self.txn.as_ref().ok_or(RelError::Transaction {
            message: "no open transaction".into(),
        })?;
        Ok(!state.log.is_empty())
    }

    /// Roll back the open transaction, restoring every modified row.
    pub fn rollback(&mut self) -> RelResult<()> {
        let state = self.txn.take().ok_or(RelError::Transaction {
            message: "no open transaction".into(),
        })?;
        self.undo(state.log);
        Ok(())
    }

    /// Set a named savepoint in the open transaction, returning a handle
    /// for [`Database::rollback_to_savepoint`] /
    /// [`Database::release_savepoint`]. Savepoints stack: the same name
    /// may be set repeatedly, and name-based lookups resolve the most
    /// recent mark (SQL semantics).
    pub fn savepoint(&mut self, name: impl Into<String>) -> RelResult<SavepointId> {
        let seq = self.savepoint_seq;
        let state = self.txn.as_mut().ok_or(RelError::Transaction {
            message: "no open transaction".into(),
        })?;
        self.savepoint_seq += 1;
        state.savepoints.push(SavepointMark {
            seq,
            name: name.into(),
            log_at: state.log.len(),
        });
        Ok(SavepointId(seq))
    }

    // Stack position of a savepoint handle, or a Transaction error.
    fn savepoint_position(&self, sp: SavepointId) -> RelResult<usize> {
        self.txn
            .as_ref()
            .and_then(|state| state.savepoints.iter().position(|m| m.seq == sp.0))
            .ok_or(RelError::Transaction {
                message: "no such savepoint".into(),
            })
    }

    /// Undo every change made since `sp` was set, keeping the
    /// transaction — and the savepoint itself — open (SQL `ROLLBACK TO
    /// SAVEPOINT`). Savepoints set after `sp` are discarded.
    pub fn rollback_to_savepoint(&mut self, sp: SavepointId) -> RelResult<()> {
        let position = self.savepoint_position(sp)?;
        let state = self.txn.as_mut().expect("position implies open txn");
        state.savepoints.truncate(position + 1);
        let log_at = state.savepoints[position].log_at;
        let undone = state.log.split_off(log_at);
        self.undo(undone);
        Ok(())
    }

    /// Remove the savepoint `sp` — and any set after it — keeping every
    /// change for the enclosing scope to commit or undo (SQL `RELEASE
    /// SAVEPOINT`).
    pub fn release_savepoint(&mut self, sp: SavepointId) -> RelResult<()> {
        let position = self.savepoint_position(sp)?;
        let state = self.txn.as_mut().expect("position implies open txn");
        state.savepoints.truncate(position);
        Ok(())
    }

    /// Roll back to the most recent savepoint with `name` (SQL name
    /// resolution over the stacked marks).
    pub fn rollback_to_savepoint_named(&mut self, name: &str) -> RelResult<()> {
        let sp = self.find_savepoint(name)?;
        self.rollback_to_savepoint(sp)
    }

    /// Release the most recent savepoint with `name`.
    pub fn release_savepoint_named(&mut self, name: &str) -> RelResult<()> {
        let sp = self.find_savepoint(name)?;
        self.release_savepoint(sp)
    }

    fn find_savepoint(&self, name: &str) -> RelResult<SavepointId> {
        self.txn
            .as_ref()
            .and_then(|state| {
                state
                    .savepoints
                    .iter()
                    .rev()
                    .find(|m| m.name == name)
                    .map(|m| SavepointId(m.seq))
            })
            .ok_or_else(|| RelError::Transaction {
                message: format!("no savepoint named {name:?}"),
            })
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Number of savepoints currently on the transaction's stack (0
    /// outside a transaction).
    pub fn savepoint_depth(&self) -> usize {
        self.txn.as_ref().map_or(0, |state| state.savepoints.len())
    }

    // Apply undo entries newest-first, restoring rows and their index
    // entries (shared by full rollback and partial savepoint rollback).
    fn undo(&mut self, log: Vec<UndoOp>) {
        for op in log.into_iter().rev() {
            match op {
                UndoOp::Insert { table, row_id, .. } => {
                    let t = self.schema.table(&table).expect("logged table exists");
                    let t = t.clone();
                    let data = self.data.get_mut(&table).expect("logged table exists");
                    data.delete_unchecked(&t, row_id);
                    // Newest-first unwinding ends with the allocator
                    // back at its pre-transaction position.
                    data.unallocate_row_id(row_id);
                }
                UndoOp::Update {
                    table, row_id, old, ..
                } => {
                    let t = self
                        .schema
                        .table(&table)
                        .expect("logged table exists")
                        .clone();
                    self.data
                        .get_mut(&table)
                        .expect("logged table exists")
                        .update_unchecked(&t, row_id, old);
                }
                UndoOp::Delete { table, row_id, old } => {
                    let t = self
                        .schema
                        .table(&table)
                        .expect("logged table exists")
                        .clone();
                    self.data
                        .get_mut(&table)
                        .expect("logged table exists")
                        .restore_unchecked(&t, row_id, old);
                }
            }
        }
    }

    fn log(&mut self, op: UndoOp) {
        if let Some(state) = &mut self.txn {
            state.log.push(op);
        }
    }

    // ------------------------------------------------------------------
    // Durability support: logical replay and snapshot access
    // ------------------------------------------------------------------

    /// Re-apply one committed logical operation, **bypassing constraint
    /// checking** and forcing the recorded row id. Recovery support:
    /// the operation was constraint-checked when it originally ran, so
    /// replaying the commit stream of [`Database::commit_logged`]
    /// against the pre-transaction state reproduces the post-commit
    /// heap and indexes byte-identically. Replayed inserts advance the
    /// table's row-id allocator past the recorded id, so rows inserted
    /// after recovery get the same ids the un-crashed run would have
    /// assigned.
    ///
    /// Not constraint-checked — never feed this user input.
    pub fn apply_logical(&mut self, op: &LogicalOp) -> RelResult<()> {
        match op {
            LogicalOp::Insert { table, row_id, row } => {
                let t = self.schema.table(table)?.clone();
                if row.len() != t.columns.len() {
                    return Err(RelError::Execution {
                        message: format!(
                            "replayed insert into {table:?} has {} value(s) for {} column(s)",
                            row.len(),
                            t.columns.len()
                        ),
                    });
                }
                let logged = self.txn.is_some().then(|| row.clone());
                self.data
                    .get_mut(table)
                    .expect("schema table has storage")
                    .insert_at_unchecked(&t, *row_id, row.clone());
                if let Some(row) = logged {
                    self.log(UndoOp::Insert {
                        table: table.clone(),
                        row_id: *row_id,
                        row,
                    });
                }
            }
            LogicalOp::Update { table, row_id, row } => {
                let t = self.schema.table(table)?.clone();
                let old = self
                    .data
                    .get_mut(table)
                    .expect("schema table has storage")
                    .update_unchecked(&t, *row_id, row.clone())
                    .ok_or_else(|| RelError::Execution {
                        message: format!("replayed update of missing row {row_id} in {table}"),
                    })?;
                if self.txn.is_some() {
                    self.log(UndoOp::Update {
                        table: table.clone(),
                        row_id: *row_id,
                        old,
                        new: row.clone(),
                    });
                }
            }
            LogicalOp::Delete { table, row_id } => {
                let t = self.schema.table(table)?.clone();
                let old = self
                    .data
                    .get_mut(table)
                    .expect("schema table has storage")
                    .delete_unchecked(&t, *row_id)
                    .ok_or_else(|| RelError::Execution {
                        message: format!("replayed delete of missing row {row_id} in {table}"),
                    })?;
                if self.txn.is_some() {
                    self.log(UndoOp::Delete {
                        table: table.clone(),
                        row_id: *row_id,
                        old,
                    });
                }
            }
        }
        Ok(())
    }

    /// The id the next insert into `table` will be assigned (snapshot
    /// state: deletes at the tail leave it above `max(id) + 1`).
    pub fn next_row_id(&self, table: &str) -> RelResult<RowId> {
        self.schema.table(table)?;
        Ok(self.data[table].next_row_id())
    }

    /// Force `table`'s row-id allocator (snapshot restore support; see
    /// [`Database::apply_logical`] for the replay counterpart). Never
    /// lowers the allocator below what stored rows require.
    pub fn set_next_row_id(&mut self, table: &str, next: RowId) -> RelResult<()> {
        self.schema.table(table)?;
        self.data
            .get_mut(table)
            .expect("schema table has storage")
            .set_next_row_id(next);
        Ok(())
    }

    /// Columns of `table` carrying a secondary (non-unique) hash index,
    /// in sorted order — what a snapshot must record so recovery can
    /// rebuild the exact index set via [`Database::create_index`].
    pub fn secondary_index_columns(&self, table: &str) -> RelResult<Vec<String>> {
        self.schema.table(table)?;
        Ok(self.data[table].secondary_index_columns())
    }

    // ------------------------------------------------------------------
    // Row operations (constraint-checked)
    // ------------------------------------------------------------------

    /// Insert a row given `(column, value)` pairs; omitted columns take
    /// their DEFAULT or NULL. All constraints are checked immediately.
    pub fn insert(&mut self, table: &str, assignments: &[(String, Value)]) -> RelResult<RowId> {
        let t = self.schema.table(table)?.clone();
        for (name, _) in assignments {
            if t.column_index(name).is_none() {
                return Err(RelError::NoSuchColumn {
                    table: table.to_owned(),
                    column: name.clone(),
                });
            }
        }
        let mut row: Vec<Value> = Vec::with_capacity(t.columns.len());
        for column in &t.columns {
            let assigned = assignments
                .iter()
                .find(|(name, _)| name == &column.name)
                .map(|(_, v)| *v);
            let mut value = match assigned {
                Some(v) => v,
                None => column.default.unwrap_or(Value::Null),
            };
            if value.is_null() && column.auto_increment {
                value = Value::Int(self.next_auto_value(table, &column.name));
            }
            row.push(value);
        }
        self.insert_prepared(&t, row)
    }

    /// Bulk entry point: insert many rows sharing one column list (the
    /// multi-row `INSERT … VALUES (…), (…)` of the set-based write
    /// pipeline). The table is resolved and the column list validated
    /// once for the whole group; auto-increment values are allocated
    /// from one batch counter instead of a per-row column scan. Each row
    /// is still constraint-checked immediately, in order, so a failing
    /// row aborts with earlier rows applied — run inside a transaction
    /// (as [`crate::sql::execute`] callers do) for atomicity. Returns
    /// the number of rows inserted.
    pub fn insert_many(
        &mut self,
        table: &str,
        columns: &[String],
        rows: &[Vec<Value>],
    ) -> RelResult<usize> {
        let t = self.schema.table(table)?.clone();
        let mut indices = Vec::with_capacity(columns.len());
        for name in columns {
            let idx = t.column_index(name).ok_or_else(|| RelError::NoSuchColumn {
                table: table.to_owned(),
                column: name.clone(),
            })?;
            // A repeated column would make later values silently win;
            // reject instead of picking one (real RDBs error here too).
            if indices.contains(&idx) {
                return Err(RelError::Execution {
                    message: format!("INSERT into {table:?} names column {name:?} twice"),
                });
            }
            indices.push(idx);
        }
        // Batch-local auto-increment counters: next value per column,
        // seeded from one scan and advanced past every value this batch
        // assigns — equivalent to the per-row max-scan, without O(N²).
        let mut auto_next: BTreeMap<usize, i64> = BTreeMap::new();
        for (i, column) in t.columns.iter().enumerate() {
            if column.auto_increment {
                auto_next.insert(i, self.next_auto_value(table, &column.name));
            }
        }
        for values in rows {
            if values.len() != columns.len() {
                return Err(RelError::Execution {
                    message: format!(
                        "INSERT into {table:?} has {} column(s) but a row with {} value(s)",
                        columns.len(),
                        values.len()
                    ),
                });
            }
            let mut row: Vec<Value> = t
                .columns
                .iter()
                .map(|c| c.default.unwrap_or(Value::Null))
                .collect();
            for (&idx, value) in indices.iter().zip(values) {
                row[idx] = *value;
            }
            for (&idx, next) in &mut auto_next {
                match &row[idx] {
                    Value::Null => {
                        row[idx] = Value::Int(*next);
                        *next += 1;
                    }
                    Value::Int(explicit) => *next = (*next).max(explicit + 1),
                    _ => {} // non-integer: the type check below rejects it
                }
            }
            self.insert_prepared(&t, row)?;
        }
        Ok(rows.len())
    }

    // Constraint-check and store one fully materialized row of `t`.
    fn insert_prepared(&mut self, t: &Table, row: Vec<Value>) -> RelResult<RowId> {
        self.check_row_constraints(t, &row, None)?;
        // The redo log needs the inserted values; clone only when a
        // transaction is actually logging.
        let logged = self.txn.is_some().then(|| row.clone());
        let row_id = self
            .data
            .get_mut(&t.name)
            .expect("schema table has storage")
            .insert_unchecked(t, row);
        if let Some(row) = logged {
            self.log(UndoOp::Insert {
                table: t.name.clone(),
                row_id,
                row,
            });
        }
        Ok(row_id)
    }

    /// Apply `(column, value)` assignments to an existing row. All
    /// constraints are re-checked, including RESTRICT when a referenced
    /// key changes.
    pub fn update_row(
        &mut self,
        table: &str,
        row_id: RowId,
        assignments: &[(String, Value)],
    ) -> RelResult<()> {
        let t = self.schema.table(table)?.clone();
        self.update_prepared(&t, row_id, assignments)
    }

    /// Bulk entry point: apply many per-row assignment sets to one table
    /// (the grouped `UPDATE … BY … SET … VALUES` of the set-based write
    /// pipeline). The table is resolved and cloned once for the whole
    /// group; rows are updated in order with the same immediate
    /// constraint checking as [`Database::update_row`], so a failing row
    /// aborts with earlier rows applied — run inside a transaction for
    /// atomicity. Returns the number of rows updated.
    pub fn update_rows(
        &mut self,
        table: &str,
        updates: Vec<(RowId, Vec<(String, Value)>)>,
    ) -> RelResult<usize> {
        let t = self.schema.table(table)?.clone();
        let affected = updates.len();
        for (row_id, assignments) in updates {
            self.update_prepared(&t, row_id, &assignments)?;
        }
        Ok(affected)
    }

    fn update_prepared(
        &mut self,
        t: &Table,
        row_id: RowId,
        assignments: &[(String, Value)],
    ) -> RelResult<()> {
        let old = self.data[&t.name]
            .row(row_id)
            .ok_or_else(|| RelError::Execution {
                message: format!("no row {row_id} in {}", t.name),
            })?
            .clone();
        let mut new_row = old.clone();
        for (name, value) in assignments {
            let i = t.column_index(name).ok_or_else(|| RelError::NoSuchColumn {
                table: t.name.clone(),
                column: name.clone(),
            })?;
            new_row[i] = *value;
        }
        if new_row == old {
            return Ok(());
        }
        // Re-check only what the update can invalidate: columns whose
        // values changed (an unchanged FK still points at a parent that
        // RESTRICT protects; an unchanged key cannot newly collide —
        // any other row taking it would have failed its own check).
        // CHECK constraints span columns and are re-evaluated whole.
        let changed: Vec<usize> = (0..new_row.len())
            .filter(|&i| new_row[i] != old[i])
            .collect();
        self.check_row_constraints_changed(t, &new_row, Some(row_id), &changed)?;
        // If a key other rows reference changes, enforce RESTRICT.
        self.check_restrict_on_key_change(t, &old, &new_row)?;
        let logged = self.txn.is_some().then(|| new_row.clone());
        self.data
            .get_mut(&t.name)
            .expect("schema table has storage")
            .update_unchecked(t, row_id, new_row);
        if let Some(new) = logged {
            self.log(UndoOp::Update {
                table: t.name.clone(),
                row_id,
                old,
                new,
            });
        }
        Ok(())
    }

    /// Delete a row. Errors with RESTRICT if other rows reference it.
    pub fn delete_row(&mut self, table: &str, row_id: RowId) -> RelResult<()> {
        let t = self.schema.table(table)?.clone();
        self.delete_prepared(&t, row_id)
    }

    /// Bulk entry point: delete many rows of one table (the row set a
    /// `WHERE pk IN (…)` delete collects). The table is resolved and
    /// cloned once; rows are deleted in order with the same immediate
    /// RESTRICT checking as [`Database::delete_row`], so a failing row
    /// aborts with earlier rows applied — run inside a transaction for
    /// atomicity. Returns the number of rows deleted.
    pub fn delete_rows(&mut self, table: &str, row_ids: &[RowId]) -> RelResult<usize> {
        let t = self.schema.table(table)?.clone();
        for &row_id in row_ids {
            self.delete_prepared(&t, row_id)?;
        }
        Ok(row_ids.len())
    }

    fn delete_prepared(&mut self, t: &Table, row_id: RowId) -> RelResult<()> {
        let row = self.data[&t.name]
            .row(row_id)
            .ok_or_else(|| RelError::Execution {
                message: format!("no row {row_id} in {}", t.name),
            })?
            .clone();
        self.check_restrict(t, &row)?;
        self.data
            .get_mut(&t.name)
            .expect("schema table has storage")
            .delete_unchecked(t, row_id);
        self.log(UndoOp::Delete {
            table: t.name.clone(),
            row_id,
            old: row,
        });
        Ok(())
    }

    // Next AUTO_INCREMENT value: max(existing) + 1, starting at 1.
    // Scans the column; acceptable at in-memory scale and always correct
    // across rollbacks (a true counter would leak values).
    fn next_auto_value(&self, table: &str, column: &str) -> i64 {
        let t = self.schema.table(table).expect("caller verified table");
        let idx = t.column_index(column).expect("caller verified column");
        self.data[table]
            .scan()
            .filter_map(|(_, row)| match &row[idx] {
                Value::Int(i) => Some(*i),
                _ => None,
            })
            .max()
            .map_or(1, |m| m + 1)
    }

    // ------------------------------------------------------------------
    // Constraint checking
    // ------------------------------------------------------------------

    // `exclude` is the row being updated (so it doesn't collide with
    // itself in uniqueness checks).
    fn check_row_constraints(
        &self,
        table: &Table,
        row: &[Value],
        exclude: Option<RowId>,
    ) -> RelResult<()> {
        let all: Vec<usize> = (0..row.len()).collect();
        self.check_row_constraints_changed(table, row, exclude, &all)
    }

    // Constraint check restricted to the columns listed in `changed`
    // (inserts pass every column). Column-local checks (type, NOT NULL,
    // UNIQUE, FK) only fire for changed columns; PK uniqueness only
    // when a key column changed; CHECK predicates span columns and are
    // always re-evaluated whole.
    fn check_row_constraints_changed(
        &self,
        table: &Table,
        row: &[Value],
        exclude: Option<RowId>,
        changed: &[usize],
    ) -> RelResult<()> {
        // Types and NOT NULL.
        for &i in changed {
            let column = &table.columns[i];
            let value = &row[i];
            if value.is_null() {
                if column.not_null || table.is_primary_key(&column.name) {
                    return Err(RelError::NotNullViolation {
                        table: table.name.clone(),
                        column: column.name.clone(),
                    });
                }
                continue;
            }
            if !value.fits(column.ty) {
                return Err(RelError::TypeMismatch {
                    table: table.name.clone(),
                    column: column.name.clone(),
                    expected: column.ty.to_string(),
                    value: *value,
                });
            }
        }
        // Primary key uniqueness.
        let pk_changed = !table.primary_key.is_empty()
            && table
                .primary_key_indices()
                .iter()
                .any(|i| changed.contains(i));
        if pk_changed {
            let key = TableData::pk_key(table, row);
            if let Some(existing) = self.data[&table.name].find_by_pk(&key) {
                if Some(existing) != exclude {
                    let rendered: Vec<String> = table
                        .primary_key_indices()
                        .iter()
                        .map(|&i| row[i].to_string())
                        .collect();
                    return Err(RelError::PrimaryKeyViolation {
                        table: table.name.clone(),
                        key: format!("({})", rendered.join(", ")),
                    });
                }
            }
        }
        // Unique columns.
        for &i in changed {
            let column = &table.columns[i];
            if column.unique && !row[i].is_null() {
                if let Some(existing) =
                    self.data[&table.name].find_by_unique(&column.name, &row[i].index_key())
                {
                    if Some(existing) != exclude {
                        return Err(RelError::UniqueViolation {
                            table: table.name.clone(),
                            column: column.name.clone(),
                            value: row[i],
                        });
                    }
                }
            }
        }
        // CHECK constraints (NULL result passes, as in SQL).
        for check in &table.checks {
            if let Value::Bool(false) = crate::sql::exec::eval_on_row(&check.predicate, table, row)?
            {
                return Err(RelError::CheckViolation {
                    table: table.name.clone(),
                    name: check.name.clone(),
                    predicate: check.predicate.to_string(),
                });
            }
        }
        // Foreign keys (NULL references are permitted, as in SQL).
        for fk in &table.foreign_keys {
            let i = table
                .column_index(&fk.column)
                .expect("validated schema: FK column exists");
            if !changed.contains(&i) {
                continue;
            }
            let value = &row[i];
            if value.is_null() {
                continue;
            }
            if !self.reference_exists(fk.ref_table.as_str(), fk.ref_column.as_str(), value)? {
                return Err(RelError::ForeignKeyViolation {
                    table: table.name.clone(),
                    column: fk.column.clone(),
                    ref_table: fk.ref_table.clone(),
                    value: *value,
                });
            }
        }
        Ok(())
    }

    fn reference_exists(
        &self,
        ref_table: &str,
        ref_column: &str,
        value: &Value,
    ) -> RelResult<bool> {
        let target = self.schema.table(ref_table)?;
        let data = &self.data[ref_table];
        // Fast path: FK targets the primary key (the use-case shape) …
        if target.primary_key == [ref_column.to_owned()] {
            return Ok(data.find_by_pk(&[value.index_key()]).is_some());
        }
        // … or a unique column with an index.
        if target.column(ref_column).is_some_and(|c| c.unique) {
            return Ok(data
                .find_by_unique(ref_column, &value.index_key())
                .is_some());
        }
        // Schema validation guarantees one of the above.
        unreachable!("FK target is PK or unique (validated)")
    }

    // RESTRICT: nothing may still reference `row` of `table`.
    fn check_restrict(&self, table: &Table, row: &[Value]) -> RelResult<()> {
        for other in self.schema.tables() {
            for fk in &other.foreign_keys {
                if fk.ref_table != table.name {
                    continue;
                }
                let ref_i = table
                    .column_index(&fk.ref_column)
                    .expect("validated schema");
                let referenced_value = &row[ref_i];
                if referenced_value.is_null() {
                    continue;
                }
                let col_i = other.column_index(&fk.column).expect("validated schema");
                // FK columns are auto-indexed, so this is a hash lookup;
                // the scan remains as the fallback for exotic schemas.
                let referencing =
                    match self.index_probe(&other.name, &fk.column, referenced_value)? {
                        Some(ids) => !ids.is_empty(),
                        None => self.data[&other.name]
                            .scan()
                            .any(|(_, r)| r[col_i].sql_eq(referenced_value) == Some(true)),
                    };
                if referencing {
                    return Err(RelError::RestrictViolation {
                        table: table.name.clone(),
                        referencing_table: other.name.clone(),
                        referencing_column: fk.column.clone(),
                        value: *referenced_value,
                    });
                }
            }
        }
        Ok(())
    }

    fn check_restrict_on_key_change(
        &self,
        table: &Table,
        old: &[Value],
        new: &[Value],
    ) -> RelResult<()> {
        // Only keys that can be referenced matter: PK and unique columns.
        let mut changed_referencable = false;
        for (i, column) in table.columns.iter().enumerate() {
            let referencable = table.is_primary_key(&column.name) || column.unique;
            if referencable && old[i] != new[i] {
                changed_referencable = true;
                break;
            }
        }
        if changed_referencable {
            self.check_restrict(table, old)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Table};
    use crate::value::SqlType;

    fn db() -> Database {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .column(Column::new("code", SqlType::Varchar).unique())
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("lastname", SqlType::Varchar).not_null())
                    .column(Column::new("rank", SqlType::Integer).default_value(Value::Int(0)))
                    .column(Column::new("team", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("team", "team", "id")
                    .build(),
            )
            .unwrap();
        Database::new(schema).unwrap()
    }

    fn a(name: &str, v: Value) -> (String, Value) {
        (name.to_owned(), v)
    }

    #[test]
    fn insert_applies_defaults_and_nulls() {
        let mut d = db();
        d.insert(
            "team",
            &[a("id", Value::Int(5)), a("name", Value::text("SEAL"))],
        )
        .unwrap();
        let rid = d
            .insert(
                "author",
                &[a("id", Value::Int(1)), a("lastname", Value::text("Hert"))],
            )
            .unwrap();
        let row = d.row("author", rid).unwrap().unwrap();
        assert_eq!(row[2], Value::Int(0)); // default rank
        assert_eq!(row[3], Value::Null); // nullable team
    }

    #[test]
    fn not_null_enforced() {
        let mut d = db();
        let err = d.insert("author", &[a("id", Value::Int(1))]).unwrap_err();
        assert!(
            matches!(err, RelError::NotNullViolation { ref column, .. } if column == "lastname")
        );
    }

    #[test]
    fn pk_is_implicitly_not_null() {
        let mut d = db();
        let err = d
            .insert("author", &[a("lastname", Value::text("x"))])
            .unwrap_err();
        assert!(matches!(err, RelError::NotNullViolation { ref column, .. } if column == "id"));
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut d = db();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        let err = d.insert("team", &[a("id", Value::Int(1))]).unwrap_err();
        assert!(matches!(err, RelError::PrimaryKeyViolation { .. }));
    }

    #[test]
    fn unique_enforced_but_ignores_nulls() {
        let mut d = db();
        d.insert(
            "team",
            &[a("id", Value::Int(1)), a("code", Value::text("X"))],
        )
        .unwrap();
        let err = d
            .insert(
                "team",
                &[a("id", Value::Int(2)), a("code", Value::text("X"))],
            )
            .unwrap_err();
        assert!(matches!(err, RelError::UniqueViolation { .. }));
        // Multiple NULLs allowed.
        d.insert("team", &[a("id", Value::Int(3))]).unwrap();
        d.insert("team", &[a("id", Value::Int(4))]).unwrap();
    }

    #[test]
    fn foreign_key_checked_immediately() {
        let mut d = db();
        // Paper §5.1: inserting the author before its team must fail,
        // which is why Algorithm 1 sorts statements.
        let err = d
            .insert(
                "author",
                &[
                    a("id", Value::Int(6)),
                    a("lastname", Value::text("Hert")),
                    a("team", Value::Int(5)),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, RelError::ForeignKeyViolation { .. }));
        d.insert("team", &[a("id", Value::Int(5))]).unwrap();
        d.insert(
            "author",
            &[
                a("id", Value::Int(6)),
                a("lastname", Value::text("Hert")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
    }

    #[test]
    fn null_fk_allowed() {
        let mut d = db();
        d.insert(
            "author",
            &[a("id", Value::Int(1)), a("lastname", Value::text("x"))],
        )
        .unwrap();
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut d = db();
        let err = d
            .insert("team", &[a("id", Value::text("one"))])
            .unwrap_err();
        assert!(matches!(err, RelError::TypeMismatch { .. }));
    }

    #[test]
    fn unknown_column_rejected() {
        let mut d = db();
        let err = d
            .insert("team", &[a("id", Value::Int(1)), a("bogus", Value::Int(2))])
            .unwrap_err();
        assert!(matches!(err, RelError::NoSuchColumn { .. }));
    }

    #[test]
    fn update_row_rechecks_constraints() {
        let mut d = db();
        d.insert("team", &[a("id", Value::Int(5))]).unwrap();
        let rid = d
            .insert(
                "author",
                &[a("id", Value::Int(1)), a("lastname", Value::text("Hert"))],
            )
            .unwrap();
        // Valid FK update.
        d.update_row("author", rid, &[a("team", Value::Int(5))])
            .unwrap();
        // Invalid FK update.
        let err = d
            .update_row("author", rid, &[a("team", Value::Int(99))])
            .unwrap_err();
        assert!(matches!(err, RelError::ForeignKeyViolation { .. }));
        // NOT NULL update.
        let err = d
            .update_row("author", rid, &[a("lastname", Value::Null)])
            .unwrap_err();
        assert!(matches!(err, RelError::NotNullViolation { .. }));
    }

    #[test]
    fn delete_restricted_while_referenced() {
        let mut d = db();
        d.insert("team", &[a("id", Value::Int(5))]).unwrap();
        let team_rid = d.find_by_pk("team", &[Value::Int(5)]).unwrap().unwrap();
        let author_rid = d
            .insert(
                "author",
                &[
                    a("id", Value::Int(1)),
                    a("lastname", Value::text("Hert")),
                    a("team", Value::Int(5)),
                ],
            )
            .unwrap();
        let err = d.delete_row("team", team_rid).unwrap_err();
        assert!(matches!(err, RelError::RestrictViolation { .. }));
        d.delete_row("author", author_rid).unwrap();
        d.delete_row("team", team_rid).unwrap();
        assert_eq!(d.row_count("team").unwrap(), 0);
    }

    #[test]
    fn update_of_referenced_pk_restricted() {
        let mut d = db();
        d.insert("team", &[a("id", Value::Int(5))]).unwrap();
        let team_rid = d.find_by_pk("team", &[Value::Int(5)]).unwrap().unwrap();
        d.insert(
            "author",
            &[
                a("id", Value::Int(1)),
                a("lastname", Value::text("Hert")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
        let err = d
            .update_row("team", team_rid, &[a("id", Value::Int(6))])
            .unwrap_err();
        assert!(matches!(err, RelError::RestrictViolation { .. }));
        // Non-key update is fine.
        d.update_row("team", team_rid, &[a("name", Value::text("SE"))])
            .unwrap();
    }

    #[test]
    fn index_probe_resolves_through_pk_unique_and_secondary() {
        let mut d = db();
        d.insert(
            "team",
            &[a("id", Value::Int(5)), a("code", Value::text("SEAL"))],
        )
        .unwrap();
        d.insert(
            "author",
            &[
                a("id", Value::Int(1)),
                a("lastname", Value::text("Hert")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
        d.insert(
            "author",
            &[
                a("id", Value::Int(2)),
                a("lastname", Value::text("Reif")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
        // Single-column PK.
        assert_eq!(
            d.index_probe("team", "id", &Value::Int(5)).unwrap(),
            Some(vec![d
                .find_by_pk("team", &[Value::Int(5)])
                .unwrap()
                .unwrap()])
        );
        // Unique column.
        assert_eq!(
            d.index_probe("team", "code", &Value::text("SEAL"))
                .unwrap()
                .map(|ids| ids.len()),
            Some(1)
        );
        // FK column: auto-indexed secondary, two matches.
        assert_eq!(
            d.index_probe("author", "team", &Value::Int(5))
                .unwrap()
                .map(|ids| ids.len()),
            Some(2)
        );
        // NULL probe matches nothing.
        assert_eq!(
            d.index_probe("author", "team", &Value::Null).unwrap(),
            Some(vec![])
        );
        // Unindexed column: no probe.
        assert_eq!(
            d.index_probe("author", "lastname", &Value::text("Hert"))
                .unwrap(),
            None
        );
        assert!(!d.supports_index_probe("author", "lastname").unwrap());
        // Until an index is created explicitly.
        d.create_index("author", "lastname").unwrap();
        assert!(d.supports_index_probe("author", "lastname").unwrap());
        assert_eq!(
            d.index_probe("author", "lastname", &Value::text("Hert"))
                .unwrap()
                .map(|ids| ids.len()),
            Some(1)
        );
        assert!(matches!(
            d.create_index("author", "bogus"),
            Err(RelError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn index_probe_refuses_aliasing_doubles() {
        // Above 2^53 a double compares sql_eq-equal to several distinct
        // integers; exact-key lookup must decline so callers scan.
        let mut d = db();
        let big = (1i64 << 60) + 50;
        d.insert("team", &[a("id", Value::Int(big))]).unwrap();
        let probe = Value::Double((1i64 << 60) as f64);
        assert_eq!(probe.sql_eq(&Value::Int(big)), Some(true));
        assert_eq!(d.index_probe("team", "id", &probe).unwrap(), None);
        // Small integral doubles still probe exactly.
        d.insert("team", &[a("id", Value::Int(2))]).unwrap();
        assert_eq!(
            d.index_probe("team", "id", &Value::Double(2.0))
                .unwrap()
                .map(|ids| ids.len()),
            Some(1)
        );
        // Non-integral doubles match nothing.
        assert_eq!(
            d.index_probe("team", "id", &Value::Double(2.5)).unwrap(),
            Some(vec![])
        );
    }

    #[test]
    fn index_probe_survives_rollback() {
        let mut d = db();
        d.insert("team", &[a("id", Value::Int(5))]).unwrap();
        d.insert(
            "author",
            &[
                a("id", Value::Int(1)),
                a("lastname", Value::text("x")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
        d.begin().unwrap();
        d.insert(
            "author",
            &[
                a("id", Value::Int(2)),
                a("lastname", Value::text("y")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
        let rid = d.find_by_pk("author", &[Value::Int(1)]).unwrap().unwrap();
        d.update_row("author", rid, &[a("team", Value::Null)])
            .unwrap();
        d.rollback().unwrap();
        let ids = d
            .index_probe("author", "team", &Value::Int(5))
            .unwrap()
            .unwrap();
        assert_eq!(ids, vec![rid]);
    }

    #[test]
    fn rollback_restores_everything() {
        let mut d = db();
        d.insert(
            "team",
            &[a("id", Value::Int(5)), a("name", Value::text("SEAL"))],
        )
        .unwrap();
        let team_rid = d.find_by_pk("team", &[Value::Int(5)]).unwrap().unwrap();
        let before = d.clone();

        d.begin().unwrap();
        d.insert("team", &[a("id", Value::Int(6))]).unwrap();
        d.update_row("team", team_rid, &[a("name", Value::text("DBTG"))])
            .unwrap();
        d.insert(
            "author",
            &[a("id", Value::Int(1)), a("lastname", Value::text("x"))],
        )
        .unwrap();
        let author_rid = d.find_by_pk("author", &[Value::Int(1)]).unwrap().unwrap();
        d.delete_row("author", author_rid).unwrap();
        d.rollback().unwrap();

        assert_eq!(
            d.row_count("team").unwrap(),
            before.row_count("team").unwrap()
        );
        assert_eq!(
            d.row("team", team_rid).unwrap().unwrap()[1],
            Value::text("SEAL")
        );
        assert_eq!(d.row_count("author").unwrap(), 0);
        // PK index restored too: re-inserting id 6 must succeed.
        d.insert("team", &[a("id", Value::Int(6))]).unwrap();
    }

    #[test]
    fn commit_keeps_changes() {
        let mut d = db();
        d.begin().unwrap();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        d.commit().unwrap();
        assert_eq!(d.row_count("team").unwrap(), 1);
    }

    #[test]
    fn nested_begin_rejected() {
        let mut d = db();
        d.begin().unwrap();
        assert!(matches!(d.begin(), Err(RelError::Transaction { .. })));
    }

    #[test]
    fn commit_without_begin_rejected() {
        let mut d = db();
        assert!(matches!(d.commit(), Err(RelError::Transaction { .. })));
        assert!(matches!(d.rollback(), Err(RelError::Transaction { .. })));
    }

    #[test]
    fn savepoint_partial_rollback_restores_to_mark() {
        let mut d = db();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        d.begin().unwrap();
        d.insert("team", &[a("id", Value::Int(2))]).unwrap();
        let sp = d.savepoint("op").unwrap();
        d.insert("team", &[a("id", Value::Int(3))]).unwrap();
        let rid = d.find_by_pk("team", &[Value::Int(1)]).unwrap().unwrap();
        d.update_row("team", rid, &[a("name", Value::text("X"))])
            .unwrap();
        d.rollback_to_savepoint(sp).unwrap();
        // Changes after the mark undone; changes before it kept.
        assert_eq!(d.row_count("team").unwrap(), 2);
        assert_eq!(d.row("team", rid).unwrap().unwrap()[1], Value::Null);
        // The savepoint survives a rollback-to (SQL semantics): work
        // after it can be undone again.
        d.insert("team", &[a("id", Value::Int(4))]).unwrap();
        d.rollback_to_savepoint(sp).unwrap();
        assert_eq!(d.row_count("team").unwrap(), 2);
        d.commit().unwrap();
        assert_eq!(d.row_count("team").unwrap(), 2);
    }

    #[test]
    fn release_keeps_changes_for_enclosing_scope() {
        let mut d = db();
        d.begin().unwrap();
        let sp = d.savepoint("op").unwrap();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        d.release_savepoint(sp).unwrap();
        assert_eq!(d.savepoint_depth(), 0);
        // Released work still belongs to the transaction's undo log.
        d.rollback().unwrap();
        assert_eq!(d.row_count("team").unwrap(), 0);
    }

    #[test]
    fn savepoints_stack_and_resolve_names_innermost_first() {
        let mut d = db();
        d.begin().unwrap();
        let outer = d.savepoint("sp").unwrap();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        d.savepoint("sp").unwrap();
        d.insert("team", &[a("id", Value::Int(2))]).unwrap();
        assert_eq!(d.savepoint_depth(), 2);
        // Name lookup hits the most recent "sp": only id 2 is undone.
        d.rollback_to_savepoint_named("sp").unwrap();
        assert_eq!(d.row_count("team").unwrap(), 1);
        // Rolling back to the outer mark discards the inner one.
        d.rollback_to_savepoint(outer).unwrap();
        assert_eq!(d.row_count("team").unwrap(), 0);
        assert_eq!(d.savepoint_depth(), 1);
        d.release_savepoint_named("sp").unwrap();
        assert_eq!(d.savepoint_depth(), 0);
        d.commit().unwrap();
    }

    #[test]
    fn rollback_to_discards_later_savepoints() {
        let mut d = db();
        d.begin().unwrap();
        let outer = d.savepoint("outer").unwrap();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        let inner = d.savepoint("inner").unwrap();
        d.insert("team", &[a("id", Value::Int(2))]).unwrap();
        d.rollback_to_savepoint(outer).unwrap();
        // The inner handle died with the rollback.
        assert!(matches!(
            d.rollback_to_savepoint(inner),
            Err(RelError::Transaction { .. })
        ));
        assert!(matches!(
            d.release_savepoint(inner),
            Err(RelError::Transaction { .. })
        ));
        d.commit().unwrap();
        assert_eq!(d.row_count("team").unwrap(), 0);
    }

    #[test]
    fn savepoint_requires_open_transaction() {
        let mut d = db();
        assert!(matches!(
            d.savepoint("sp"),
            Err(RelError::Transaction { .. })
        ));
        d.begin().unwrap();
        let sp = d.savepoint("sp").unwrap();
        d.commit().unwrap();
        // Handles die with the transaction.
        assert!(matches!(
            d.rollback_to_savepoint(sp),
            Err(RelError::Transaction { .. })
        ));
        assert_eq!(d.savepoint_depth(), 0);
    }

    #[test]
    fn stale_savepoint_id_never_aliases_a_later_transaction() {
        // The sequence counter is database-lifetime monotonic: a handle
        // from a committed transaction must not resolve to a mark of a
        // later transaction that happens to occupy the same stack slot.
        let mut d = db();
        d.begin().unwrap();
        let stale = d.savepoint("a").unwrap();
        d.commit().unwrap();
        d.begin().unwrap();
        let fresh = d.savepoint("b").unwrap();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        assert_ne!(stale, fresh);
        assert!(matches!(
            d.rollback_to_savepoint(stale),
            Err(RelError::Transaction { .. })
        ));
        // The insert survived the failed stale rollback.
        assert_eq!(d.row_count("team").unwrap(), 1);
        d.commit().unwrap();
    }

    #[test]
    fn savepoint_rollback_restores_indexes() {
        let mut d = db();
        d.insert("team", &[a("id", Value::Int(5))]).unwrap();
        d.begin().unwrap();
        let sp = d.savepoint("op").unwrap();
        d.insert(
            "author",
            &[
                a("id", Value::Int(1)),
                a("lastname", Value::text("x")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
        d.rollback_to_savepoint(sp).unwrap();
        // FK secondary index entry undone with the row.
        assert_eq!(
            d.index_probe("author", "team", &Value::Int(5)).unwrap(),
            Some(vec![])
        );
        // PK index too: the freed id is reusable within the txn.
        d.insert(
            "author",
            &[a("id", Value::Int(1)), a("lastname", Value::text("y"))],
        )
        .unwrap();
        d.commit().unwrap();
        assert_eq!(d.row_count("author").unwrap(), 1);
    }

    #[test]
    fn commit_logged_surfaces_applied_ops_in_order() {
        let mut d = db();
        d.begin().unwrap();
        let rid = d
            .insert(
                "team",
                &[a("id", Value::Int(1)), a("name", Value::text("A"))],
            )
            .unwrap();
        d.update_row("team", rid, &[a("name", Value::text("B"))])
            .unwrap();
        let rid2 = d.insert("team", &[a("id", Value::Int(2))]).unwrap();
        d.delete_row("team", rid2).unwrap();
        let ops = d.commit_logged().unwrap();
        assert_eq!(
            ops,
            vec![
                LogicalOp::Insert {
                    table: "team".into(),
                    row_id: rid,
                    row: vec![Value::Int(1), Value::text("A"), Value::Null],
                },
                LogicalOp::Update {
                    table: "team".into(),
                    row_id: rid,
                    row: vec![Value::Int(1), Value::text("B"), Value::Null],
                },
                LogicalOp::Insert {
                    table: "team".into(),
                    row_id: rid2,
                    row: vec![Value::Int(2), Value::Null, Value::Null],
                },
                LogicalOp::Delete {
                    table: "team".into(),
                    row_id: rid2,
                },
            ]
        );
    }

    #[test]
    fn commit_logged_excludes_savepoint_rolled_back_work() {
        let mut d = db();
        d.begin().unwrap();
        d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        let sp = d.savepoint("op").unwrap();
        d.insert("team", &[a("id", Value::Int(2))]).unwrap();
        d.rollback_to_savepoint(sp).unwrap();
        d.insert("team", &[a("id", Value::Int(3))]).unwrap();
        let ops = d.commit_logged().unwrap();
        let ids: Vec<&Value> = ops
            .iter()
            .map(|op| match op {
                LogicalOp::Insert { row, .. } => &row[0],
                _ => panic!("only inserts expected"),
            })
            .collect();
        assert_eq!(ids, vec![&Value::Int(1), &Value::Int(3)]);
    }

    #[test]
    fn replaying_commit_stream_reproduces_state_byte_identically() {
        let mut live = db();
        let mut replica = db();
        live.begin().unwrap();
        live.insert(
            "team",
            &[a("id", Value::Int(5)), a("name", Value::text("SEAL"))],
        )
        .unwrap();
        live.insert(
            "author",
            &[
                a("id", Value::Int(1)),
                a("lastname", Value::text("Hert")),
                a("team", Value::Int(5)),
            ],
        )
        .unwrap();
        let rid = live
            .find_by_pk("author", &[Value::Int(1)])
            .unwrap()
            .unwrap();
        live.update_row("author", rid, &[a("lastname", Value::text("H."))])
            .unwrap();
        let ops = live.commit_logged().unwrap();
        for op in &ops {
            replica.apply_logical(op).unwrap();
        }
        for table in ["team", "author"] {
            let a: Vec<_> = live.scan(table).unwrap().collect();
            let b: Vec<_> = replica.scan(table).unwrap().collect();
            assert_eq!(a, b, "replayed heap differs in {table}");
            assert_eq!(
                live.next_row_id(table).unwrap(),
                replica.next_row_id(table).unwrap()
            );
        }
        // Index state replayed too.
        assert_eq!(
            replica
                .index_probe("author", "team", &Value::Int(5))
                .unwrap(),
            Some(vec![rid])
        );
    }

    #[test]
    fn rollback_unwinds_row_id_allocation() {
        let mut d = db();
        let r1 = d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        d.begin().unwrap();
        d.insert("team", &[a("id", Value::Int(2))]).unwrap();
        d.insert("team", &[a("id", Value::Int(3))]).unwrap();
        d.rollback().unwrap();
        // Rolled-back inserts do not burn ids…
        assert_eq!(d.next_row_id("team").unwrap(), r1 + 1);
        // …including through partial savepoint rollback.
        d.begin().unwrap();
        d.insert("team", &[a("id", Value::Int(4))]).unwrap();
        let before = d.next_row_id("team").unwrap();
        let sp = d.savepoint("op").unwrap();
        d.insert("team", &[a("id", Value::Int(5))]).unwrap();
        d.rollback_to_savepoint(sp).unwrap();
        assert_eq!(d.next_row_id("team").unwrap(), before);
        d.commit().unwrap();
        assert_eq!(d.insert("team", &[a("id", Value::Int(6))]).unwrap(), before);
    }

    #[test]
    fn next_row_id_survives_tail_delete_via_setter() {
        let mut d = db();
        let r1 = d.insert("team", &[a("id", Value::Int(1))]).unwrap();
        d.delete_row("team", r1).unwrap();
        // Allocator is past the deleted row…
        assert_eq!(d.next_row_id("team").unwrap(), r1 + 1);
        // …a snapshot restore forces the same position…
        let mut fresh = db();
        fresh.set_next_row_id("team", r1 + 1).unwrap();
        assert_eq!(
            fresh.insert("team", &[a("id", Value::Int(2))]).unwrap(),
            r1 + 1
        );
        // …and the setter never re-issues a live id.
        let mut clamped = db();
        let r = clamped.insert("team", &[a("id", Value::Int(3))]).unwrap();
        clamped.set_next_row_id("team", 0).unwrap();
        assert!(clamped.next_row_id("team").unwrap() > r);
    }

    #[test]
    fn secondary_index_columns_reports_creatable_set() {
        let mut d = db();
        // FK column auto-indexed.
        assert_eq!(
            d.secondary_index_columns("author").unwrap(),
            vec!["team".to_owned()]
        );
        d.create_index("author", "lastname").unwrap();
        assert_eq!(
            d.secondary_index_columns("author").unwrap(),
            vec!["lastname".to_owned(), "team".to_owned()]
        );
        assert_eq!(
            d.secondary_index_columns("team").unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn noop_update_succeeds_without_log() {
        let mut d = db();
        d.insert(
            "team",
            &[a("id", Value::Int(1)), a("name", Value::text("A"))],
        )
        .unwrap();
        let rid = d.find_by_pk("team", &[Value::Int(1)]).unwrap().unwrap();
        d.begin().unwrap();
        d.update_row("team", rid, &[a("name", Value::text("A"))])
            .unwrap();
        d.rollback().unwrap();
        assert_eq!(d.row("team", rid).unwrap().unwrap()[1], Value::text("A"));
    }
}

#[cfg(test)]
mod auto_increment_tests {
    use super::*;
    use crate::schema::{Column, Table};
    use crate::value::SqlType;

    fn db() -> Database {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("link")
                    .column(
                        Column::new("id", SqlType::Integer)
                            .not_null()
                            .auto_increment(),
                    )
                    .column(Column::new("x", SqlType::Integer))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        Database::new(schema).unwrap()
    }

    #[test]
    fn assigns_sequential_ids_when_omitted() {
        let mut d = db();
        let r1 = d
            .insert("link", &[("x".to_owned(), Value::Int(10))])
            .unwrap();
        let r2 = d
            .insert("link", &[("x".to_owned(), Value::Int(20))])
            .unwrap();
        assert_eq!(d.row("link", r1).unwrap().unwrap()[0], Value::Int(1));
        assert_eq!(d.row("link", r2).unwrap().unwrap()[0], Value::Int(2));
    }

    #[test]
    fn explicit_value_respected_and_counter_follows_max() {
        let mut d = db();
        d.insert("link", &[("id".to_owned(), Value::Int(41))])
            .unwrap();
        let r = d
            .insert("link", &[("x".to_owned(), Value::Int(1))])
            .unwrap();
        assert_eq!(d.row("link", r).unwrap().unwrap()[0], Value::Int(42));
    }

    #[test]
    fn auto_increment_on_varchar_rejected_by_validation() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("bad")
                    .column(Column::new("id", SqlType::Varchar).auto_increment())
                    .build(),
            )
            .unwrap();
        assert!(Database::new(schema).is_err());
    }
}
