//! The database-wide string dictionary: every text value the engine
//! stores or compares is interned exactly once and referenced by a
//! fixed-width [`Sym`].
//!
//! Interning turns the hot paths that used to hash, compare, and clone
//! heap `String`s — equality residuals, hash-join keys, secondary-index
//! probes, undo/redo logging — into integer operations: two `Sym`s are
//! equal iff their strings are equal, so `Value::Text` equality and
//! hashing never touch string bytes, and building an index key out of a
//! text value is a 4-byte copy instead of an allocation.
//!
//! The dictionary is **process-global and append-only**. Globality is
//! what makes the integer-equality invariant hold across every
//! `Database`, savepoint-rollback replica, and differential-test twin
//! in the process: the same string always resolves to the same `Sym`,
//! so byte-identity suites keep comparing raw values. Append-only means
//! symbols are never re-numbered or freed (refcount/epoch GC is
//! deferred — see ARCHITECTURE.md); resolved `&'static str`s are
//! therefore stable for the process lifetime, which is what lets the
//! serialization edges (SQL printer, RDF literals, wire formats) borrow
//! out of the dictionary instead of cloning.
//!
//! Durable id spaces are a separate concern: on-disk WAL/snapshot
//! encodings must not depend on process intern order, so `dur` keeps
//! its own dense *persistent* id space versioned alongside the heap
//! (snapshots embed the id → string table, commit units carry deltas)
//! and maps persistent ids to `Sym`s at recovery time.
//!
//! # Storage
//!
//! Resolution is lock-free: symbol ids index into a chunk table of
//! append-only arrays (chunk `k` holds `1024 << k` slots), so
//! `Sym::as_str` is two loads and no lock. Interning new strings takes
//! a mutex, but only the *first* occurrence of a string ever pays it —
//! repeat interning is one hash-map probe under the same lock, and the
//! engine's hot paths hold `Sym`s already.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

/// An interned string: a fixed-width handle into the process-global
/// dictionary. Equality and hashing are integer operations on the id;
/// two `Sym`s are equal iff the strings they intern are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Intern `s`, returning its stable symbol (the existing one if the
    /// string was seen before).
    pub fn intern(s: &str) -> Sym {
        DICT.intern(s)
    }

    /// The interned string. Lock-free; the reference is valid for the
    /// process lifetime (the dictionary is append-only).
    pub fn as_str(self) -> &'static str {
        DICT.resolve(self.0)
    }

    /// The raw dictionary id (diagnostics and tests; on-disk formats
    /// use their own persistent id space, never this value).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({} {:?})", self.0, self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::ops::Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

/// Point-in-time dictionary counters (surfaced on a server's
/// `/status`). Process-global, like the dictionary itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictionaryStats {
    /// Distinct strings interned.
    pub symbols: u64,
    /// Total bytes of interned string data (each distinct string
    /// counted once).
    pub string_bytes: u64,
    /// Intern calls answered by an existing symbol.
    pub hits: u64,
    /// String bytes those hits did *not* re-allocate — the heap the
    /// dictionary saved versus one-`String`-per-value storage.
    pub bytes_saved: u64,
}

/// Current dictionary counters.
pub fn dictionary_stats() -> DictionaryStats {
    DICT.stats()
}

// Chunked append-only storage: chunk k holds FIRST_CHUNK << k slots,
// so 27 chunks cover every u32 id. Chunks are allocated lazily under
// the intern lock; readers only ever follow a chunk pointer published
// (Release) before any id inside it escaped the lock.
const FIRST_CHUNK_LOG2: u32 = 10;
const NUM_CHUNKS: usize = (33 - FIRST_CHUNK_LOG2) as usize;

// id → (chunk, offset). Chunk k spans ids
// [FIRST_CHUNK*(2^k - 1), FIRST_CHUNK*(2^(k+1) - 1)).
fn locate(id: u32) -> (usize, usize) {
    let shifted = (id >> FIRST_CHUNK_LOG2) + 1;
    let chunk = shifted.ilog2() as usize;
    let start = ((1u64 << chunk) - 1) << FIRST_CHUNK_LOG2;
    (chunk, (id as u64 - start) as usize)
}

fn chunk_len(chunk: usize) -> usize {
    1usize << (FIRST_CHUNK_LOG2 as usize + chunk)
}

struct Dictionary {
    // Intern side: string → id, plus the append cursor. The map keys
    // borrow the leaked interned strings, so each string is stored
    // once. (`Option` because `HashMap::new` is not const.)
    map: Mutex<Option<HashMap<&'static str, u32>>>,
    // Resolve side: chunk pointers, each to a leaked boxed slice of
    // `&'static str` slots. Written only under the map lock.
    chunks: [AtomicPtr<&'static str>; NUM_CHUNKS],
    symbols: AtomicU64,
    string_bytes: AtomicU64,
    hits: AtomicU64,
    bytes_saved: AtomicU64,
}

static DICT: Dictionary = Dictionary {
    map: Mutex::new(None),
    chunks: [const { AtomicPtr::new(std::ptr::null_mut()) }; NUM_CHUNKS],
    symbols: AtomicU64::new(0),
    string_bytes: AtomicU64::new(0),
    hits: AtomicU64::new(0),
    bytes_saved: AtomicU64::new(0),
};

impl Dictionary {
    fn intern(&self, s: &str) -> Sym {
        let mut guard = self.map.lock().unwrap_or_else(|e| e.into_inner());
        let map = guard.get_or_insert_with(HashMap::new);
        if let Some(&id) = map.get(s) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.bytes_saved
                .fetch_add(s.len() as u64, Ordering::Relaxed);
            return Sym(id);
        }
        let id = u32::try_from(map.len()).expect("dictionary full (2^32 symbols)");
        // Leak: append-only interner, GC deferred by design. The leaked
        // allocation is the single copy every Value/serialization
        // borrows from.
        let stored: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let (chunk, offset) = locate(id);
        let mut base = self.chunks[chunk].load(Ordering::Acquire);
        if base.is_null() {
            // First id landing in this chunk: allocate and publish it.
            // Only this thread can be here (the map lock serializes
            // interning), so the store cannot race another writer.
            let slots: Box<[&'static str]> = vec![""; chunk_len(chunk)].into_boxed_slice();
            base = Box::leak(slots).as_mut_ptr();
            self.chunks[chunk].store(base, Ordering::Release);
        }
        // SAFETY: `offset < chunk_len(chunk)` by construction of
        // `locate`; the slot is written exactly once (ids are never
        // reused) while holding the map lock, and no reader dereferences
        // this id before `Sym(id)` escapes the lock — the release of
        // the lock (or the channel the Sym travels through) orders the
        // write before any read.
        unsafe { *base.add(offset) = stored };
        map.insert(stored, id);
        self.symbols.fetch_add(1, Ordering::Relaxed);
        self.string_bytes
            .fetch_add(stored.len() as u64, Ordering::Relaxed);
        Sym(id)
    }

    fn resolve(&self, id: u32) -> &'static str {
        let (chunk, offset) = locate(id);
        let base = self.chunks[chunk].load(Ordering::Acquire);
        assert!(!base.is_null(), "Sym({id}) resolved before being interned");
        // SAFETY: `Sym`s are only constructed by `intern`, which wrote
        // slot `offset` before the id escaped; the Acquire load above
        // pairs with the Release publication of the chunk.
        unsafe { *base.add(offset) }
    }

    fn stats(&self) -> DictionaryStats {
        DictionaryStats {
            symbols: self.symbols.load(Ordering::Relaxed),
            string_bytes: self.string_bytes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_string_same_symbol() {
        let a = Sym::intern("dict-test-alpha");
        let b = Sym::intern("dict-test-alpha");
        let c = Sym::intern("dict-test-beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "dict-test-alpha");
        assert_eq!(c.as_str(), "dict-test-beta");
    }

    #[test]
    fn resolution_is_stable_under_growth() {
        let first = Sym::intern("dict-test-stable");
        let before = first.as_str() as *const str;
        // Push the dictionary across at least one chunk boundary.
        for i in 0..3000 {
            Sym::intern(&format!("dict-test-growth-{i}"));
        }
        assert_eq!(first.as_str() as *const str, before, "resolution moved");
        assert_eq!(Sym::intern("dict-test-stable"), first);
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        assert!(locate(u32::MAX).0 < NUM_CHUNKS);
        // Every id maps inside its chunk.
        for id in [0u32, 1023, 1024, 3071, 3072, 1 << 20, u32::MAX] {
            let (chunk, offset) = locate(id);
            assert!(offset < chunk_len(chunk), "id {id}");
        }
    }

    #[test]
    fn empty_string_interns() {
        let e = Sym::intern("");
        assert_eq!(e.as_str(), "");
        assert_eq!(Sym::intern(""), e);
    }

    #[test]
    fn stats_count_hits_and_bytes() {
        let before = dictionary_stats();
        Sym::intern("dict-test-stats-unique-string");
        Sym::intern("dict-test-stats-unique-string");
        let after = dictionary_stats();
        assert!(after.symbols > before.symbols);
        assert!(after.hits > before.hits);
        assert!(after.string_bytes > before.string_bytes);
        assert!(after.bytes_saved > before.bytes_saved);
    }

    #[test]
    fn concurrent_intern_resolve() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..500 {
                        // Half shared strings (contended interning of the
                        // same key), half thread-unique.
                        let shared = Sym::intern(&format!("dict-test-shared-{i}"));
                        assert_eq!(shared.as_str(), format!("dict-test-shared-{i}"));
                        let own = Sym::intern(&format!("dict-test-own-{t}-{i}"));
                        assert_eq!(own.as_str(), format!("dict-test-own-{t}-{i}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Shared strings resolved to one symbol across threads.
        let a = Sym::intern("dict-test-shared-0");
        let b = Sym::intern("dict-test-shared-0");
        assert_eq!(a, b);
    }
}
