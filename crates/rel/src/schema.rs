//! Relational schema: tables, columns, and the declarative constraints
//! the paper's Figure 1 uses (primary keys, foreign keys, NOT NULL,
//! defaults) plus UNIQUE.

use crate::error::{RelError, RelResult};
use crate::value::{SqlType, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Data type.
    pub ty: SqlType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// DEFAULT value applied when an INSERT omits the column.
    pub default: Option<Value>,
    /// UNIQUE constraint (single-column).
    pub unique: bool,
    /// AUTO_INCREMENT: when an INSERT omits (or NULLs) this integer
    /// column, the engine assigns `max(existing) + 1` — the MySQL
    /// behaviour the paper's Listing 16 relies on when inserting into
    /// `publication_author` without its surrogate `id`.
    pub auto_increment: bool,
}

impl Column {
    /// A nullable column without default.
    pub fn new(name: impl Into<String>, ty: SqlType) -> Self {
        Column {
            name: name.into(),
            ty,
            not_null: false,
            default: None,
            unique: false,
            auto_increment: false,
        }
    }

    /// Builder: mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Builder: set a DEFAULT value.
    pub fn default_value(mut self, value: Value) -> Self {
        self.default = Some(value);
        self
    }

    /// Builder: mark UNIQUE.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Builder: mark AUTO_INCREMENT (integer columns only; enforced by
    /// [`Schema::validate`]).
    pub fn auto_increment(mut self) -> Self {
        self.auto_increment = true;
        self
    }
}

/// A foreign key constraint: `column` references `ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column (must be the referenced table's primary key or
    /// a unique column).
    pub ref_column: String,
}

/// A table-level CHECK constraint: a named boolean expression every row
/// must satisfy. The paper's §8 lists "other database constraints such
/// as assertions" as an open question; the engine supports row-level
/// checks so the mediator's feedback path can exercise them.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Constraint name (reported on violation).
    pub name: String,
    /// The predicate, over this table's columns. Rows where it
    /// evaluates to FALSE are rejected (NULL passes, as in SQL).
    pub predicate: crate::sql::ast::Expr,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Primary key column names (commonly just `id` in the use case).
    pub primary_key: Vec<String>,
    /// Foreign key constraints.
    pub foreign_keys: Vec<ForeignKey>,
    /// CHECK constraints.
    pub checks: Vec<Check>,
}

impl Table {
    /// Start building a table.
    pub fn builder(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            table: Table {
                name: name.into(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
                checks: Vec::new(),
            },
        }
    }

    /// Position of `column` in the row layout.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Column definition by name.
    pub fn column(&self, column: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == column)
    }

    /// Whether `column` is part of the primary key.
    pub fn is_primary_key(&self, column: &str) -> bool {
        self.primary_key.iter().any(|c| c == column)
    }

    /// The foreign key declared on `column`, if any.
    pub fn foreign_key_on(&self, column: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| fk.column == column)
    }

    /// Indices of the primary key columns in the row layout.
    pub fn primary_key_indices(&self) -> Vec<usize> {
        self.primary_key
            .iter()
            .map(|name| {
                self.column_index(name)
                    .expect("validated: PK column exists")
            })
            .collect()
    }
}

/// Builder for [`Table`].
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Add a column.
    pub fn column(mut self, column: Column) -> Self {
        self.table.columns.push(column);
        self
    }

    /// Declare the primary key (single or composite).
    pub fn primary_key(mut self, columns: &[&str]) -> Self {
        self.table.primary_key = columns.iter().map(|c| (*c).to_owned()).collect();
        self
    }

    /// Declare a foreign key `column → ref_table.ref_column`.
    pub fn foreign_key(mut self, column: &str, ref_table: &str, ref_column: &str) -> Self {
        self.table.foreign_keys.push(ForeignKey {
            column: column.to_owned(),
            ref_table: ref_table.to_owned(),
            ref_column: ref_column.to_owned(),
        });
        self
    }

    /// Declare a CHECK constraint from SQL expression text
    /// (e.g. `"year >= 1900 AND year <= 2100"`). Panics on unparsable
    /// text — checks are schema-definition-time artifacts.
    pub fn check(mut self, name: &str, predicate_sql: &str) -> Self {
        // Parse via a synthetic statement to reuse the expression
        // grammar.
        let stmt = crate::sql::parser::parse(&format!(
            "DELETE FROM {} WHERE {predicate_sql};",
            self.table.name
        ))
        .unwrap_or_else(|e| panic!("invalid CHECK expression {predicate_sql:?}: {e}"));
        let crate::sql::ast::Statement::Delete(d) = stmt else {
            unreachable!()
        };
        self.table.checks.push(Check {
            name: name.to_owned(),
            predicate: d.where_clause.expect("WHERE present"),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> Table {
        self.table
    }
}

/// A database schema: a named collection of tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    tables: BTreeMap<String, Table>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table. Returns an error on duplicate names.
    pub fn add_table(&mut self, table: Table) -> RelResult<()> {
        if self.tables.contains_key(&table.name) {
            return Err(RelError::DuplicateTable {
                table: table.name.clone(),
            });
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> RelResult<&Table> {
        self.tables.get(name).ok_or_else(|| RelError::NoSuchTable {
            table: name.to_owned(),
        })
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Iterate tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the schema has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Validate internal consistency: PK/FK columns exist, FK targets
    /// exist and point at the target's primary key or a unique column,
    /// and PK columns are implicitly NOT NULL.
    ///
    /// Call after assembling a schema; [`crate::Database::new`] does so
    /// automatically.
    pub fn validate(&self) -> RelResult<()> {
        for table in self.tables.values() {
            let mut seen = std::collections::BTreeSet::new();
            for column in &table.columns {
                if !seen.insert(&column.name) {
                    return Err(RelError::SchemaInvalid {
                        message: format!(
                            "table {:?} declares column {:?} twice",
                            table.name, column.name
                        ),
                    });
                }
                if column.auto_increment && column.ty != crate::value::SqlType::Integer {
                    return Err(RelError::SchemaInvalid {
                        message: format!(
                            "table {:?}: AUTO_INCREMENT column {:?} must be INTEGER",
                            table.name, column.name
                        ),
                    });
                }
            }
            for pk in &table.primary_key {
                if table.column_index(pk).is_none() {
                    return Err(RelError::SchemaInvalid {
                        message: format!(
                            "table {:?}: primary key column {pk:?} does not exist",
                            table.name
                        ),
                    });
                }
            }
            for check in &table.checks {
                let mut missing: Option<String> = None;
                visit_columns(&check.predicate, &mut |cref| {
                    if table.column_index(&cref.column).is_none() {
                        missing = Some(cref.column.clone());
                    }
                });
                if let Some(column) = missing {
                    return Err(RelError::SchemaInvalid {
                        message: format!(
                            "table {:?}: CHECK {:?} references missing column {column:?}",
                            table.name, check.name
                        ),
                    });
                }
            }
            for fk in &table.foreign_keys {
                if table.column_index(&fk.column).is_none() {
                    return Err(RelError::SchemaInvalid {
                        message: format!(
                            "table {:?}: foreign key column {:?} does not exist",
                            table.name, fk.column
                        ),
                    });
                }
                let target =
                    self.tables
                        .get(&fk.ref_table)
                        .ok_or_else(|| RelError::SchemaInvalid {
                            message: format!(
                                "table {:?}: foreign key references missing table {:?}",
                                table.name, fk.ref_table
                            ),
                        })?;
                let target_col =
                    target
                        .column(&fk.ref_column)
                        .ok_or_else(|| RelError::SchemaInvalid {
                            message: format!(
                                "table {:?}: foreign key references missing column {}.{}",
                                table.name, fk.ref_table, fk.ref_column
                            ),
                        })?;
                let is_pk = target.primary_key == vec![fk.ref_column.clone()];
                if !is_pk && !target_col.unique {
                    return Err(RelError::SchemaInvalid {
                        message: format!(
                            "table {:?}: foreign key target {}.{} is neither the primary key nor unique",
                            table.name, fk.ref_table, fk.ref_column
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Tables that `table` references via foreign keys (dependency edges
    /// used by Algorithm 1's statement sort).
    pub fn referenced_tables(&self, table: &str) -> Vec<&str> {
        self.tables
            .get(table)
            .map(|t| {
                t.foreign_keys
                    .iter()
                    .map(|fk| fk.ref_table.as_str())
                    .collect()
            })
            .unwrap_or_default()
    }
}

// Walk every column reference in an expression.
fn visit_columns(expr: &crate::sql::ast::Expr, f: &mut impl FnMut(&crate::sql::ast::ColumnRef)) {
    use crate::sql::ast::Expr;
    match expr {
        Expr::Value(_) => {}
        Expr::Column(c) => f(c),
        Expr::Binary { left, right, .. } => {
            visit_columns(left, f);
            visit_columns(right, f);
        }
        Expr::Not(inner) => visit_columns(inner, f),
        Expr::IsNull { expr, .. } => visit_columns(expr, f),
        Expr::InList { expr, list, .. } => {
            visit_columns(expr, f);
            for item in list {
                visit_columns(item, f);
            }
        }
    }
}

impl fmt::Display for Schema {
    /// DDL-style rendering used by the Figure 1 experiment output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for table in self.tables.values() {
            writeln!(f, "CREATE TABLE {} (", table.name)?;
            let mut lines = Vec::new();
            for column in &table.columns {
                let mut line = format!("  {} {}", column.name, column.ty);
                if column.not_null {
                    line.push_str(" NOT NULL");
                }
                if let Some(default) = &column.default {
                    line.push_str(&format!(" DEFAULT {default}"));
                }
                if column.unique {
                    line.push_str(" UNIQUE");
                }
                lines.push(line);
            }
            if !table.primary_key.is_empty() {
                lines.push(format!("  PRIMARY KEY ({})", table.primary_key.join(", ")));
            }
            for fk in &table.foreign_keys {
                lines.push(format!(
                    "  FOREIGN KEY ({}) REFERENCES {} ({})",
                    fk.column, fk.ref_table, fk.ref_column
                ));
            }
            for check in &table.checks {
                lines.push(format!(
                    "  CONSTRAINT {} CHECK ({})",
                    check.name, check.predicate
                ));
            }
            writeln!(f, "{}", lines.join(",\n"))?;
            writeln!(f, ");")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_schema() -> Schema {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("lastname", SqlType::Varchar).not_null())
                    .column(Column::new("team", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("team", "team", "id")
                    .build(),
            )
            .unwrap();
        schema
    }

    #[test]
    fn build_and_validate() {
        let schema = two_table_schema();
        schema.validate().unwrap();
        assert_eq!(schema.len(), 2);
        let author = schema.table("author").unwrap();
        assert_eq!(author.column_index("lastname"), Some(1));
        assert!(author.is_primary_key("id"));
        assert_eq!(
            author
                .foreign_key_on("team")
                .map(|fk| fk.ref_table.as_str()),
            Some("team")
        );
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut schema = two_table_schema();
        let err = schema
            .add_table(Table::builder("team").build())
            .unwrap_err();
        assert!(matches!(err, RelError::DuplicateTable { .. }));
    }

    #[test]
    fn missing_table_lookup_errors() {
        let schema = two_table_schema();
        assert!(matches!(
            schema.table("nope"),
            Err(RelError::NoSuchTable { .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_fk_target_table() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("a")
                    .column(Column::new("id", SqlType::Integer))
                    .column(Column::new("b", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("b", "missing", "id")
                    .build(),
            )
            .unwrap();
        assert!(matches!(
            schema.validate(),
            Err(RelError::SchemaInvalid { .. })
        ));
    }

    #[test]
    fn validate_rejects_fk_to_non_unique_column() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("t")
                    .column(Column::new("id", SqlType::Integer))
                    .column(Column::new("x", SqlType::Integer))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("u")
                    .column(Column::new("id", SqlType::Integer))
                    .column(Column::new("t_x", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("t_x", "t", "x")
                    .build(),
            )
            .unwrap();
        assert!(matches!(
            schema.validate(),
            Err(RelError::SchemaInvalid { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_column() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("t")
                    .column(Column::new("id", SqlType::Integer))
                    .column(Column::new("id", SqlType::Integer))
                    .build(),
            )
            .unwrap();
        assert!(matches!(
            schema.validate(),
            Err(RelError::SchemaInvalid { .. })
        ));
    }

    #[test]
    fn validate_rejects_missing_pk_column() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("t")
                    .column(Column::new("id", SqlType::Integer))
                    .primary_key(&["nope"])
                    .build(),
            )
            .unwrap();
        assert!(matches!(
            schema.validate(),
            Err(RelError::SchemaInvalid { .. })
        ));
    }

    #[test]
    fn referenced_tables_lists_fk_targets() {
        let schema = two_table_schema();
        assert_eq!(schema.referenced_tables("author"), vec!["team"]);
        assert!(schema.referenced_tables("team").is_empty());
    }

    #[test]
    fn ddl_display_mentions_constraints() {
        let out = two_table_schema().to_string();
        assert!(out.contains("CREATE TABLE author"));
        assert!(out.contains("lastname VARCHAR NOT NULL"));
        assert!(out.contains("FOREIGN KEY (team) REFERENCES team (id)"));
        assert!(out.contains("PRIMARY KEY (id)"));
    }
}

#[cfg(test)]
mod check_tests {
    use super::*;
    use crate::database::Database;
    use crate::value::Value;

    fn schema_with_check() -> Schema {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("publication")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("year", SqlType::Integer))
                    .primary_key(&["id"])
                    .check("year_range", "year >= 1900 AND year <= 2100")
                    .build(),
            )
            .unwrap();
        schema
    }

    #[test]
    fn check_accepts_valid_rows_and_nulls() {
        let mut db = Database::new(schema_with_check()).unwrap();
        db.insert(
            "publication",
            &[
                ("id".to_owned(), Value::Int(1)),
                ("year".to_owned(), Value::Int(2009)),
            ],
        )
        .unwrap();
        // NULL year passes (SQL semantics: NULL check result is not FALSE).
        db.insert("publication", &[("id".to_owned(), Value::Int(2))])
            .unwrap();
    }

    #[test]
    fn check_rejects_out_of_range_insert_and_update() {
        let mut db = Database::new(schema_with_check()).unwrap();
        let err = db
            .insert(
                "publication",
                &[
                    ("id".to_owned(), Value::Int(1)),
                    ("year".to_owned(), Value::Int(1492)),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, RelError::CheckViolation { ref name, .. } if name == "year_range"));

        let rid = db
            .insert(
                "publication",
                &[
                    ("id".to_owned(), Value::Int(2)),
                    ("year".to_owned(), Value::Int(2000)),
                ],
            )
            .unwrap();
        let err = db
            .update_row("publication", rid, &[("year".to_owned(), Value::Int(9999))])
            .unwrap_err();
        assert!(matches!(err, RelError::CheckViolation { .. }));
    }

    #[test]
    fn check_referencing_missing_column_fails_validation() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("t")
                    .column(Column::new("id", SqlType::Integer))
                    .primary_key(&["id"])
                    .check("bad", "ghost > 0")
                    .build(),
            )
            .unwrap();
        assert!(matches!(
            schema.validate(),
            Err(RelError::SchemaInvalid { .. })
        ));
    }

    #[test]
    fn check_appears_in_ddl_display() {
        let out = schema_with_check().to_string();
        assert!(out.contains("CONSTRAINT year_range CHECK (year >= 1900 AND year <= 2100)"));
    }

    #[test]
    #[should_panic(expected = "invalid CHECK expression")]
    fn unparsable_check_panics_at_definition() {
        let _ = Table::builder("t").check("bad", "%%%");
    }
}
