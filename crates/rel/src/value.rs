//! SQL data types and runtime values.

use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine — the types Figure 1 uses
/// (`INTEGER`, `VARCHAR`) plus the scalars needed by generic workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit signed integer (`INTEGER`).
    Integer,
    /// Variable-length string (`VARCHAR`).
    Varchar,
    /// Boolean (`BOOLEAN`).
    Boolean,
    /// 64-bit float (`DOUBLE`).
    Double,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::Varchar => write!(f, "VARCHAR"),
            SqlType::Boolean => write!(f, "BOOLEAN"),
            SqlType::Double => write!(f, "DOUBLE"),
        }
    }
}

/// A runtime SQL value.
///
/// `Null` is a distinct variant rather than an `Option` wrapper because
/// three-valued logic threads through expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// String value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// Double value.
    Double(f64),
}

impl Value {
    /// Shorthand for a text value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The type of this value, if non-null.
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(SqlType::Integer),
            Value::Text(_) => Some(SqlType::Varchar),
            Value::Bool(_) => Some(SqlType::Boolean),
            Value::Double(_) => Some(SqlType::Double),
        }
    }

    /// Whether this value can be stored in a column of type `ty`
    /// (NULL fits every type; integers widen into DOUBLE columns).
    pub fn fits(&self, ty: SqlType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), SqlType::Integer | SqlType::Double)
                | (Value::Text(_), SqlType::Varchar)
                | (Value::Bool(_), SqlType::Boolean)
                | (Value::Double(_), SqlType::Double)
        )
    }

    /// SQL equality: NULL compares equal to nothing (returns `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (a, b) => a == b,
        })
    }

    /// SQL ordering comparison: `None` if either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Double(a), Value::Double(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).partial_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Key form for uniqueness/index checks: total order including NULL.
    /// Distinct from [`Value::sql_cmp`], which implements three-valued
    /// comparison semantics.
    pub fn index_key(&self) -> IndexKey {
        match self {
            Value::Null => IndexKey::Null,
            Value::Int(i) => IndexKey::Int(*i),
            Value::Text(s) => IndexKey::Text(s.clone()),
            Value::Bool(b) => IndexKey::Bool(*b),
            Value::Double(d) => IndexKey::Double(d.to_bits()),
        }
    }
}

/// Totally ordered, hashable projection of a [`Value`], used as a key in
/// primary-key and uniqueness indexes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IndexKey {
    /// NULL sorts first.
    Null,
    /// Integer key.
    Int(i64),
    /// Boolean key.
    Bool(bool),
    /// Double key (by bit pattern — exact match only).
    Double(u64),
    /// Text key.
    Text(String),
}

/// Render a string as a single-quoted SQL literal (doubling embedded
/// quotes, the style the paper's listings use: `'Matthias'`).
pub fn quote_sql_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

impl fmt::Display for Value {
    /// SQL literal rendering (`NULL`, `6`, `'Mr'`, `TRUE`, `1.5`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{}", quote_sql_string(s)),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Double(d) => write!(f, "{d:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Value::Int(6).to_string(), "6");
        assert_eq!(Value::text("Mr").to_string(), "'Mr'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("O'Brien").to_string(), "'O''Brien'");
    }

    #[test]
    fn fits_type_checks() {
        assert!(Value::Int(1).fits(SqlType::Integer));
        assert!(Value::Int(1).fits(SqlType::Double));
        assert!(!Value::Int(1).fits(SqlType::Varchar));
        assert!(Value::Null.fits(SqlType::Integer));
        assert!(Value::text("x").fits(SqlType::Varchar));
        assert!(!Value::text("x").fits(SqlType::Boolean));
    }

    #[test]
    fn null_equality_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.0)), Some(true));
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.5)), Some(false));
    }

    #[test]
    fn ordering() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::text("a").sql_cmp(&Value::text("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(1).sql_cmp(&Value::text("a")), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn index_keys_are_total() {
        let mut keys = [
            Value::text("b").index_key(),
            Value::Null.index_key(),
            Value::Int(5).index_key(),
        ];
        keys.sort();
        assert_eq!(keys[0], IndexKey::Null);
    }
}
