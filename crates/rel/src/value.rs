//! SQL data types and runtime values.

use crate::dict::Sym;
use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine — the types Figure 1 uses
/// (`INTEGER`, `VARCHAR`) plus the scalars needed by generic workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit signed integer (`INTEGER`).
    Integer,
    /// Variable-length string (`VARCHAR`).
    Varchar,
    /// Boolean (`BOOLEAN`).
    Boolean,
    /// 64-bit float (`DOUBLE`).
    Double,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Integer => write!(f, "INTEGER"),
            SqlType::Varchar => write!(f, "VARCHAR"),
            SqlType::Boolean => write!(f, "BOOLEAN"),
            SqlType::Double => write!(f, "DOUBLE"),
        }
    }
}

/// A runtime SQL value.
///
/// `Null` is a distinct variant rather than an `Option` wrapper because
/// three-valued logic threads through expression evaluation.
///
/// Text is carried as an interned [`Sym`], so a `Value` is a fixed-size
/// `Copy` scalar: equality and hashing never touch string bytes, rows
/// hold 4-byte ids instead of heap `String`s, and cloning a row is a
/// memcpy. The string itself lives in the process-global dictionary
/// ([`crate::dict`]) and is borrowed back out at the serialization
/// edges via [`Value::as_text`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// String value, interned in the global dictionary.
    Text(Sym),
    /// Boolean value.
    Bool(bool),
    /// Double value.
    Double(f64),
}

impl Value {
    /// Shorthand for a text value (interns the string).
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Sym::intern(s.as_ref()))
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The interned string if this is a text value. The borrow is
    /// `'static`: the dictionary is append-only, so serialization
    /// layers can hold it without cloning.
    pub fn as_text(&self) -> Option<&'static str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The type of this value, if non-null.
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(SqlType::Integer),
            Value::Text(_) => Some(SqlType::Varchar),
            Value::Bool(_) => Some(SqlType::Boolean),
            Value::Double(_) => Some(SqlType::Double),
        }
    }

    /// Whether this value can be stored in a column of type `ty`
    /// (NULL fits every type; integers widen into DOUBLE columns).
    pub fn fits(&self, ty: SqlType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), SqlType::Integer | SqlType::Double)
                | (Value::Text(_), SqlType::Varchar)
                | (Value::Bool(_), SqlType::Boolean)
                | (Value::Double(_), SqlType::Double)
        )
    }

    /// SQL equality: NULL compares equal to nothing (returns `None`).
    ///
    /// Text equality is an integer compare on the interned ids — the
    /// dictionary guarantees equal strings intern to equal symbols.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (a, b) => a == b,
        })
    }

    /// SQL ordering comparison: `None` if either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            // Symbol ids are assigned in intern order, not lexicographic
            // order, so `<`/`>` resolve the strings. Equality short-cut
            // first: same symbol is the common case in residuals.
            (Value::Text(a), Value::Text(b)) => Some(if a == b {
                Ordering::Equal
            } else {
                a.as_str().cmp(b.as_str())
            }),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Double(a), Value::Double(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).partial_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// Key form for uniqueness/index checks: total order including NULL.
    /// Distinct from [`Value::sql_cmp`], which implements three-valued
    /// comparison semantics. Building a key never allocates — text keys
    /// carry the interned symbol.
    pub fn index_key(&self) -> IndexKey {
        match self {
            Value::Null => IndexKey::Null,
            Value::Int(i) => IndexKey::Int(*i),
            Value::Text(s) => IndexKey::Text(*s),
            Value::Bool(b) => IndexKey::Bool(*b),
            Value::Double(d) => IndexKey::Double(d.to_bits()),
        }
    }
}

/// Totally ordered, hashable projection of a [`Value`], used as a key in
/// primary-key and uniqueness indexes. `Copy` — text keys hold the
/// interned symbol, so key construction and hashing are integer work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// NULL sorts first.
    Null,
    /// Integer key.
    Int(i64),
    /// Boolean key.
    Bool(bool),
    /// Double key (by bit pattern — exact match only).
    Double(u64),
    /// Text key (interned symbol; equality/hash by id, order by string).
    Text(Sym),
}

// Variant rank for the total order (declaration order, as the former
// derived impl had it).
fn key_rank(key: &IndexKey) -> u8 {
    match key {
        IndexKey::Null => 0,
        IndexKey::Int(_) => 1,
        IndexKey::Bool(_) => 2,
        IndexKey::Double(_) => 3,
        IndexKey::Text(_) => 4,
    }
}

impl Ord for IndexKey {
    // Hand-written (not derived) because text keys must keep sorting
    // lexicographically: symbol ids are assigned in intern order.
    // Consistent with the derived `Eq`/`Hash` — equal symbols are
    // exactly equal strings.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (IndexKey::Int(a), IndexKey::Int(b)) => a.cmp(b),
            (IndexKey::Bool(a), IndexKey::Bool(b)) => a.cmp(b),
            (IndexKey::Double(a), IndexKey::Double(b)) => a.cmp(b),
            (IndexKey::Text(a), IndexKey::Text(b)) => {
                if a == b {
                    Ordering::Equal
                } else {
                    a.as_str().cmp(b.as_str())
                }
            }
            (a, b) => key_rank(a).cmp(&key_rank(b)),
        }
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Append `s` as a single-quoted SQL literal (doubling embedded quotes,
/// the style the paper's listings use: `'Matthias'`) to `out` — the
/// allocation-free form the grouped-DML printer batches through.
pub fn quote_sql_string_into(s: &str, out: &mut String) {
    out.reserve(s.len() + 2);
    out.push('\'');
    // Bulk-copy between quotes instead of pushing char by char: embedded
    // quotes are rare, so this is usually one memcpy.
    let mut rest = s;
    while let Some(pos) = rest.find('\'') {
        out.push_str(&rest[..=pos]);
        out.push('\'');
        rest = &rest[pos + 1..];
    }
    out.push_str(rest);
    out.push('\'');
}

/// Render a string as a single-quoted SQL literal.
pub fn quote_sql_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    quote_sql_string_into(s, &mut out);
    out
}

impl fmt::Display for Value {
    /// SQL literal rendering (`NULL`, `6`, `'Mr'`, `TRUE`, `1.5`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => {
                // Stream the quoted form; the grouped-DML printer emits
                // thousands of these per statement, so no intermediate
                // String.
                f.write_str("'")?;
                let mut rest = s.as_str();
                while let Some(pos) = rest.find('\'') {
                    f.write_str(&rest[..=pos])?;
                    f.write_str("'")?;
                    rest = &rest[pos + 1..];
                }
                f.write_str(rest)?;
                f.write_str("'")
            }
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Double(d) => write!(f, "{d:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Value::Int(6).to_string(), "6");
        assert_eq!(Value::text("Mr").to_string(), "'Mr'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("O'Brien").to_string(), "'O''Brien'");
    }

    #[test]
    fn quoting_edge_cases() {
        assert_eq!(quote_sql_string(""), "''");
        assert_eq!(quote_sql_string("'"), "''''");
        assert_eq!(quote_sql_string("a'b'c"), "'a''b''c'");
        assert_eq!(quote_sql_string("''"), "''''''");
        assert_eq!(quote_sql_string("plain"), "'plain'");
    }

    #[test]
    fn fits_type_checks() {
        assert!(Value::Int(1).fits(SqlType::Integer));
        assert!(Value::Int(1).fits(SqlType::Double));
        assert!(!Value::Int(1).fits(SqlType::Varchar));
        assert!(Value::Null.fits(SqlType::Integer));
        assert!(Value::text("x").fits(SqlType::Varchar));
        assert!(!Value::text("x").fits(SqlType::Boolean));
    }

    #[test]
    fn null_equality_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn text_equality_is_by_content() {
        assert_eq!(Value::text("a").sql_eq(&Value::text("a")), Some(true));
        assert_eq!(Value::text("a").sql_eq(&Value::text("b")), Some(false));
        assert_eq!(
            Value::text(String::from("ab")).sql_eq(&Value::text("ab")),
            Some(true)
        );
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.0)), Some(true));
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.5)), Some(false));
    }

    #[test]
    fn ordering() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::text("a").sql_cmp(&Value::text("b")),
            Some(Ordering::Less)
        );
        // Lexicographic even when intern order disagrees.
        let later_but_smaller = Value::text("zz-ordering-1");
        let earlier_but_larger = Value::text("aa-ordering-1");
        assert_eq!(
            earlier_but_larger.sql_cmp(&later_but_smaller),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(1).sql_cmp(&Value::text("a")), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn index_keys_are_total() {
        let mut keys = [
            Value::text("b").index_key(),
            Value::Null.index_key(),
            Value::Int(5).index_key(),
        ];
        keys.sort();
        assert_eq!(keys[0], IndexKey::Null);
    }

    #[test]
    fn text_index_keys_sort_lexicographically() {
        let mut keys = [
            Value::text("zz-keysort").index_key(),
            Value::text("mm-keysort").index_key(),
            Value::text("aa-keysort").index_key(),
        ];
        keys.sort();
        assert_eq!(keys[0], Value::text("aa-keysort").index_key());
        assert_eq!(keys[2], Value::text("zz-keysort").index_key());
    }

    #[test]
    fn as_text_borrows_from_dictionary() {
        let v = Value::text("borrowed");
        assert_eq!(v.as_text(), Some("borrowed"));
        assert_eq!(Value::Int(1).as_text(), None);
        assert_eq!(Value::Null.as_text(), None);
    }
}
