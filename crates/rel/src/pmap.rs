//! A persistent (copy-on-write) ordered map for multi-version storage.
//!
//! [`PMap`] is a B-tree whose nodes are [`Arc`]-shared: cloning a map is
//! O(1) (one `Arc` clone of the root), and mutation path-copies only the
//! nodes between the root and the touched entry via [`Arc::make_mut`] —
//! a node whose refcount is 1 is edited in place, so a writer that is
//! the sole owner of its tree pays ordinary B-tree costs, while a writer
//! whose tree is shared with published snapshots copies O(log n) nodes
//! per operation and leaves every snapshot untouched. This is what lets
//! the mediator publish an immutable database version per commit
//! (fluree-style immutable indexes) without cloning table data wholesale
//! and without readers ever taking the write lock.
//!
//! Deletion is lazy: entries are removed and emptied nodes unlinked, but
//! underfull nodes are not rebalanced (a pathological delete pattern can
//! lower node density, never correctness). The row-id keyed heaps this
//! map backs are append-mostly, so rebalancing machinery would be dead
//! weight on the write path.

use std::borrow::Borrow;
use std::sync::Arc;

// Maximum entries per leaf and children per internal node. Small enough
// that a path copy is a few cache lines, large enough that a million-row
// table is ~5 levels deep.
const MAX: usize = 16;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
    },
    Internal {
        // keys.len() + 1 == children.len(); keys[i] is the smallest key
        // reachable under children[i + 1], so descent picks
        // children[partition_point(sep <= key)].
        keys: Vec<K>,
        children: Vec<Arc<Node<K, V>>>,
    },
}

/// A persistent ordered map: O(1) clone, copy-on-write mutation.
///
/// Requires `K: Ord + Clone` and `V: Clone` (clones happen only when a
/// shared node must be path-copied, or when a separator key is copied
/// into an internal node on split).
#[derive(Debug, Clone, Default)]
pub struct PMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        PMap { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the value stored under `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys
                        .binary_search_by(|k| k.borrow().cmp(key))
                        .ok()
                        .map(|i| &vals[i])
                }
                Node::Internal { keys, children } => {
                    node = &children[keys.partition_point(|sep| sep.borrow() <= key)];
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }

    /// Mutable borrow of the value stored under `key`, path-copying any
    /// shared nodes on the way down. A miss copies nothing.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if !self.contains_key(key) {
            return None;
        }
        let mut node = Arc::make_mut(self.root.as_mut()?);
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys
                        .binary_search_by(|k| k.borrow().cmp(key))
                        .ok()
                        .map(|i| &mut vals[i])
                }
                Node::Internal { keys, children } => {
                    let i = keys.partition_point(|sep| sep.borrow() <= key);
                    node = Arc::make_mut(&mut children[i]);
                }
            }
        }
    }

    /// Insert `key` → `value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let Some(root) = self.root.as_mut() else {
            self.root = Some(Arc::new(Node::Leaf {
                keys: vec![key],
                vals: vec![value],
            }));
            self.len = 1;
            return None;
        };
        let (old, split) = insert_rec(Arc::make_mut(root), key, value);
        if old.is_none() {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            let left = self.root.take().expect("root present");
            self.root = Some(Arc::new(Node::Internal {
                keys: vec![sep],
                children: vec![left, right],
            }));
        }
        old
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if !self.contains_key(key) {
            return None;
        }
        let root = self.root.as_mut().expect("key present implies a root");
        let (removed, _) = remove_rec(Arc::make_mut(root), key);
        debug_assert!(removed.is_some(), "contains_key guaranteed presence");
        self.len -= 1;
        // Shrink the root: drop an emptied tree, collapse single-child
        // internal chains left behind by lazy deletion.
        loop {
            match self.root.as_deref() {
                Some(Node::Leaf { keys, .. }) if keys.is_empty() => {
                    self.root = None;
                }
                Some(Node::Internal { children, .. }) if children.len() == 1 => {
                    let child = Arc::clone(&children[0]);
                    self.root = Some(child);
                    continue;
                }
                _ => {}
            }
            break;
        }
        removed
    }

    /// Iterate `(&key, &value)` in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: match &self.root {
                Some(root) => vec![(root.as_ref(), 0)],
                None => Vec::new(),
            },
        }
    }

    /// The greatest key and its value.
    pub fn last_key_value(&self) -> Option<(&K, &V)> {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    let last = keys.len().checked_sub(1)?;
                    return Some((&keys[last], &vals[last]));
                }
                Node::Internal { children, .. } => {
                    node = children.last().expect("internal nodes are non-empty");
                }
            }
        }
    }
}

// Insert into `node`; on overflow return the separator key and the new
// right sibling for the parent to link.
#[allow(clippy::type_complexity)]
fn insert_rec<K: Ord + Clone, V: Clone>(
    node: &mut Node<K, V>,
    key: K,
    value: V,
) -> (Option<V>, Option<(K, Arc<Node<K, V>>)>) {
    match node {
        Node::Leaf { keys, vals } => match keys.binary_search(&key) {
            Ok(i) => (Some(std::mem::replace(&mut vals[i], value)), None),
            Err(i) => {
                keys.insert(i, key);
                vals.insert(i, value);
                if keys.len() <= MAX {
                    return (None, None);
                }
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_vals = vals.split_off(mid);
                let sep = right_keys[0].clone();
                (
                    None,
                    Some((
                        sep,
                        Arc::new(Node::Leaf {
                            keys: right_keys,
                            vals: right_vals,
                        }),
                    )),
                )
            }
        },
        Node::Internal { keys, children } => {
            let i = keys.partition_point(|sep| *sep <= key);
            let (old, split) = insert_rec(Arc::make_mut(&mut children[i]), key, value);
            let Some((sep, right)) = split else {
                return (old, None);
            };
            keys.insert(i, sep);
            children.insert(i + 1, right);
            if children.len() <= MAX {
                return (old, None);
            }
            // children: n+1, keys: n. Keep the left `mid` children with
            // keys[..mid-1], promote keys[mid-1], hand the rest to the
            // new right sibling.
            let mid = children.len() / 2;
            let right_children = children.split_off(mid);
            let right_keys = keys.split_off(mid);
            let sep_up = keys.pop().expect("split leaves a separator to promote");
            (
                old,
                Some((
                    sep_up,
                    Arc::new(Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    }),
                )),
            )
        }
    }
}

// Remove from `node`; the bool reports "this node is now empty" so the
// parent unlinks it (lazy deletion: no rebalancing of underfull nodes).
fn remove_rec<K, V, Q>(node: &mut Node<K, V>, key: &Q) -> (Option<V>, bool)
where
    K: Ord + Clone + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    match node {
        Node::Leaf { keys, vals } => match keys.binary_search_by(|k| k.borrow().cmp(key)) {
            Ok(i) => {
                keys.remove(i);
                let removed = vals.remove(i);
                (Some(removed), keys.is_empty())
            }
            Err(_) => (None, false),
        },
        Node::Internal { keys, children } => {
            let i = keys.partition_point(|sep| sep.borrow() <= key);
            let (removed, child_empty) = remove_rec(Arc::make_mut(&mut children[i]), key);
            if child_empty {
                children.remove(i);
                // Drop the separator that bounded the unlinked child.
                if i > 0 {
                    keys.remove(i - 1);
                } else if !keys.is_empty() {
                    keys.remove(0);
                }
            }
            (removed, children.is_empty())
        }
    }
}

/// Borrowed in-order iterator over a [`PMap`].
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    // (node, next index into its entries/children).
    stack: Vec<(&'a Node<K, V>, usize)>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = *self.stack.last()?;
            match node {
                Node::Leaf { keys, vals } => {
                    if idx < keys.len() {
                        self.stack.last_mut().expect("non-empty").1 += 1;
                        return Some((&keys[idx], &vals[idx]));
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if idx < children.len() {
                        self.stack.last_mut().expect("non-empty").1 += 1;
                        self.stack.push((children[idx].as_ref(), 0));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

impl<'a, K: Ord + Clone, V: Clone> IntoIterator for &'a PMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = PMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    // Deterministic pseudo-random stream (xorshift) for the model test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn matches_btreemap_under_random_workload() {
        let mut rng = Rng(0x5eed_cafe);
        let mut map: PMap<u64, u64> = PMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..20_000u64 {
            let key = rng.next() % 512;
            match rng.next() % 3 {
                0 | 1 => {
                    assert_eq!(map.insert(key, step), model.insert(key, step));
                }
                _ => {
                    assert_eq!(map.remove(&key), model.remove(&key));
                }
            }
            if step % 1_000 == 0 {
                assert_eq!(map.len(), model.len());
                assert!(map
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .eq(model.iter().map(|(k, v)| (*k, *v))));
            }
        }
        assert_eq!(map.len(), model.len());
        assert!(map
            .iter()
            .map(|(k, v)| (*k, *v))
            .eq(model.iter().map(|(k, v)| (*k, *v))));
        assert_eq!(
            map.last_key_value().map(|(k, v)| (*k, *v)),
            model.last_key_value().map(|(k, v)| (*k, *v))
        );
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut map: PMap<u32, String> = PMap::new();
        for i in 0..1_000 {
            map.insert(i, format!("v{i}"));
        }
        let snapshot = map.clone();
        // Mutate the original every which way: overwrite, remove, extend.
        for i in 0..500 {
            map.insert(i, "overwritten".to_owned());
        }
        for i in 500..750 {
            map.remove(&i);
        }
        for i in 1_000..1_200 {
            map.insert(i, "new".to_owned());
        }
        // The snapshot still reads exactly the original state.
        assert_eq!(snapshot.len(), 1_000);
        for i in 0..1_000 {
            assert_eq!(
                snapshot.get(&i).map(String::as_str),
                Some(&*format!("v{i}"))
            );
        }
        assert_eq!(snapshot.get(&1_100), None);
        // And the mutated map sees its own changes.
        assert_eq!(map.get(&0).map(String::as_str), Some("overwritten"));
        assert_eq!(map.get(&600), None);
        assert_eq!(map.len(), 950);
    }

    #[test]
    fn get_mut_does_not_disturb_snapshots() {
        let mut map: PMap<u32, Vec<u32>> = PMap::new();
        for i in 0..100 {
            map.insert(i, vec![i]);
        }
        let snapshot = map.clone();
        map.get_mut(&42).expect("present").push(99);
        assert_eq!(snapshot.get(&42), Some(&vec![42]));
        assert_eq!(map.get(&42), Some(&vec![42, 99]));
        assert!(map.get_mut(&12_345).is_none());
    }

    #[test]
    fn empty_and_single_entry_edges() {
        let mut map: PMap<i32, i32> = PMap::new();
        assert!(map.is_empty());
        assert_eq!(map.get(&1), None);
        assert_eq!(map.remove(&1), None);
        assert_eq!(map.last_key_value(), None);
        assert_eq!(map.iter().count(), 0);
        map.insert(7, 70);
        assert_eq!(map.last_key_value(), Some((&7, &70)));
        assert_eq!(map.remove(&7), Some(70));
        assert!(map.is_empty());
        assert!(map.root.is_none(), "emptied tree drops its root");
    }

    #[test]
    fn ascending_and_descending_bulk_loads_iterate_sorted() {
        for descending in [false, true] {
            let mut map: PMap<u64, u64> = PMap::new();
            for i in 0..5_000u64 {
                let k = if descending { 5_000 - i } else { i };
                map.insert(k, k * 2);
            }
            assert_eq!(map.len(), 5_000);
            let keys: Vec<u64> = map.iter().map(|(k, _)| *k).collect();
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted iteration");
            assert_eq!(keys.len(), 5_000);
        }
    }
}
