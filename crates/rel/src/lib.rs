//! In-memory relational database engine — the RDB substrate of the
//! OntoAccess reproduction (Hert, Reif, Gall: *Updating Relational Data
//! via SPARQL/Update*, EDBT 2010).
//!
//! The paper ran against MySQL over JDBC; this crate replaces it with a
//! from-scratch engine reproducing the two behaviours the paper's
//! translation algorithms depend on:
//!
//! 1. **Declared integrity constraints are enforced** — PRIMARY KEY,
//!    FOREIGN KEY, NOT NULL, DEFAULT, and UNIQUE (the constraint kinds
//!    R3M records, §4).
//! 2. **Constraints are checked immediately, during a transaction** —
//!    which is why Algorithm 1 (§5.1) must sort generated statements by
//!    foreign-key dependencies before executing them.
//!
//! Layers: typed values ([`value`]), schema ([`schema`]), storage with PK
//! and unique indexes ([`storage`]), the transactional [`Database`], and
//! a SQL DML front end ([`sql`]) with parser, printer (paper-listing
//! style), and executor.

#![warn(missing_docs)]

pub mod database;
pub mod dict;
pub mod error;
pub mod pmap;
pub mod schema;
pub mod storage;
pub mod value;

/// SQL DML: AST, parser, printer, executor.
pub mod sql {
    pub mod ast;
    pub mod exec;
    pub mod parser;
    pub mod printer;

    pub use ast::{
        BinOp, BulkRow, BulkUpdateStmt, ColumnRef, DeleteStmt, Expr, InsertStmt, SelectItem,
        SelectStmt, Statement, TableRef, UpdateStmt,
    };
    pub use exec::{
        eval, eval_on_row, execute, execute_select, execute_select_reference, execute_sql,
        ExecOutcome, ResultSet,
    };
    pub use parser::{parse, parse_script};
}

pub use database::{Database, LogicalOp, ProbeIds, SavepointId};
pub use dict::{dictionary_stats, DictionaryStats, Sym};
pub use error::{RelError, RelResult};
pub use pmap::PMap;
pub use schema::{Check, Column, ForeignKey, Schema, Table, TableBuilder};
pub use storage::{RowId, TableData};
pub use value::{IndexKey, SqlType, Value};
