//! Serialize an R3M mapping back to its RDF representation — the inverse
//! of [`crate::reader`], producing documents in the style of the paper's
//! Listings 1-5. `reader::from_graph(writer::to_graph(m)) == m` is a
//! tested round-trip invariant.

use crate::model::{AttributeMap, ConstraintInfo, Mapping, PropertyMapping};
use rdf::namespace::{r3m, rdf_type, PrefixMap};
use rdf::{BlankNode, Graph, Iri, Literal, Term, Triple};

/// Build the RDF graph describing `mapping`.
pub fn to_graph(mapping: &Mapping) -> Graph {
    let mut graph = Graph::new();
    let mut blank_counter = 0usize;
    let db = Term::Iri(mapping.id.clone());
    graph.insert(Triple::new(
        db.clone(),
        rdf_type(),
        Term::Iri(r3m::DatabaseMap()),
    ));

    let lit = |graph: &mut Graph, s: &Term, p: Iri, v: &Option<String>| {
        if let Some(v) = v {
            graph.insert(Triple::new(s.clone(), p, Literal::plain(v.clone())));
        }
    };
    lit(&mut graph, &db, r3m::jdbcDriver(), &mapping.jdbc_driver);
    lit(&mut graph, &db, r3m::jdbcUrl(), &mapping.jdbc_url);
    lit(&mut graph, &db, r3m::username(), &mapping.username);
    lit(&mut graph, &db, r3m::password(), &mapping.password);
    lit(&mut graph, &db, r3m::uriPrefix(), &mapping.uri_prefix);

    for table in &mapping.tables {
        let node = Term::Iri(table.id.clone());
        graph.insert(Triple::new(db.clone(), r3m::hasTable(), node.clone()));
        graph.insert(Triple::new(
            node.clone(),
            rdf_type(),
            Term::Iri(r3m::TableMap()),
        ));
        graph.insert(Triple::new(
            node.clone(),
            r3m::hasTableName(),
            Literal::plain(table.table_name.clone()),
        ));
        graph.insert(Triple::new(
            node.clone(),
            r3m::mapsToClass(),
            Term::Iri(table.class.clone()),
        ));
        graph.insert(Triple::new(
            node.clone(),
            r3m::uriPattern(),
            Literal::plain(table.uri_pattern.source().to_owned()),
        ));
        for attr in &table.attributes {
            let attr_node = write_attribute(&mut graph, attr, &mut blank_counter);
            graph.insert(Triple::new(node.clone(), r3m::hasAttribute(), attr_node));
        }
    }

    for link in &mapping.link_tables {
        let node = Term::Iri(link.id.clone());
        graph.insert(Triple::new(db.clone(), r3m::hasTable(), node.clone()));
        graph.insert(Triple::new(
            node.clone(),
            rdf_type(),
            Term::Iri(r3m::LinkTableMap()),
        ));
        graph.insert(Triple::new(
            node.clone(),
            r3m::hasTableName(),
            Literal::plain(link.table_name.clone()),
        ));
        graph.insert(Triple::new(
            node.clone(),
            r3m::mapsToObjectProperty(),
            Term::Iri(link.property.clone()),
        ));
        let s_node = write_attribute(&mut graph, &link.subject_attribute, &mut blank_counter);
        graph.insert(Triple::new(
            node.clone(),
            r3m::hasSubjectAttribute(),
            s_node,
        ));
        let o_node = write_attribute(&mut graph, &link.object_attribute, &mut blank_counter);
        graph.insert(Triple::new(node.clone(), r3m::hasObjectAttribute(), o_node));
    }
    graph
}

/// Serialize `mapping` as Turtle (using the common prefixes plus a `map:`
/// prefix derived from the mapping node's namespace when possible).
pub fn to_turtle(mapping: &Mapping) -> String {
    let graph = to_graph(mapping);
    let mut prefixes = PrefixMap::common();
    // Try to register a `map:` prefix so the output resembles the paper.
    let id = mapping.id.as_str();
    if let Some(pos) = id.rfind(['#', '/']) {
        prefixes.insert("map", &id[..pos + 1]);
    }
    rdf::turtle::write(&graph, &prefixes)
}

fn write_attribute(graph: &mut Graph, attr: &AttributeMap, blank_counter: &mut usize) -> Term {
    let node = Term::Iri(attr.id.clone());
    graph.insert(Triple::new(
        node.clone(),
        rdf_type(),
        Term::Iri(r3m::AttributeMap()),
    ));
    graph.insert(Triple::new(
        node.clone(),
        r3m::hasAttributeName(),
        Literal::plain(attr.attribute_name.clone()),
    ));
    match &attr.property {
        Some(PropertyMapping::Data(p)) => {
            graph.insert(Triple::new(
                node.clone(),
                r3m::mapsToDataProperty(),
                Term::Iri(p.clone()),
            ));
        }
        Some(PropertyMapping::Object(p)) => {
            graph.insert(Triple::new(
                node.clone(),
                r3m::mapsToObjectProperty(),
                Term::Iri(p.clone()),
            ));
        }
        None => {}
    }
    if let Some(pattern) = &attr.value_pattern {
        graph.insert(Triple::new(
            node.clone(),
            r3m::valuePattern(),
            Literal::plain(pattern.source().to_owned()),
        ));
    }
    for constraint in &attr.constraints {
        *blank_counter += 1;
        let c_node = Term::Blank(BlankNode::new(format!("c{blank_counter}")));
        graph.insert(Triple::new(
            node.clone(),
            r3m::hasConstraint(),
            c_node.clone(),
        ));
        let class = match constraint {
            ConstraintInfo::PrimaryKey => r3m::PrimaryKey(),
            ConstraintInfo::NotNull => r3m::NotNull(),
            ConstraintInfo::Unique => r3m::Unique(),
            ConstraintInfo::Default { .. } => r3m::Default(),
            ConstraintInfo::ForeignKey { .. } => r3m::ForeignKey(),
            ConstraintInfo::Check { .. } => r3m::Check(),
        };
        graph.insert(Triple::new(c_node.clone(), rdf_type(), Term::Iri(class)));
        match constraint {
            ConstraintInfo::Default { value: Some(v) } => {
                graph.insert(Triple::new(
                    c_node.clone(),
                    r3m::hasValue(),
                    Literal::plain(v.clone()),
                ));
            }
            ConstraintInfo::ForeignKey { references } => {
                graph.insert(Triple::new(
                    c_node.clone(),
                    r3m::references(),
                    Term::Iri(references.clone()),
                ));
            }
            ConstraintInfo::Check { name, predicate } => {
                graph.insert(Triple::new(
                    c_node.clone(),
                    r3m::hasName(),
                    Literal::plain(name.clone()),
                ));
                graph.insert(Triple::new(
                    c_node.clone(),
                    r3m::hasValue(),
                    Literal::plain(predicate.clone()),
                ));
            }
            _ => {}
        }
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader;

    const DOC: &str = r#"
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/map#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ont: <http://example.org/ontology#> .
map:database a r3m:DatabaseMap ;
    r3m:uriPrefix "http://example.org/db/" ;
    r3m:hasTable map:author , map:team .
map:author a r3m:TableMap ;
    r3m:hasTableName "author" ;
    r3m:mapsToClass foaf:Person ;
    r3m:uriPattern "author%%id%%" ;
    r3m:hasAttribute map:author_id , map:author_team .
map:author_id a r3m:AttributeMap ;
    r3m:hasAttributeName "id" ;
    r3m:hasConstraint [ a r3m:PrimaryKey ] .
map:author_team a r3m:AttributeMap ;
    r3m:hasAttributeName "team" ;
    r3m:mapsToObjectProperty ont:team ;
    r3m:hasConstraint [ a r3m:ForeignKey ; r3m:references map:team ] .
map:team a r3m:TableMap ;
    r3m:hasTableName "team" ;
    r3m:mapsToClass foaf:Group ;
    r3m:uriPattern "team%%id%%" ;
    r3m:hasAttribute map:team_id .
map:team_id a r3m:AttributeMap ;
    r3m:hasAttributeName "id" ;
    r3m:hasConstraint [ a r3m:PrimaryKey ; ] ;
    r3m:hasConstraint [ a r3m:Default ; r3m:hasValue "1" ] .
"#;

    #[test]
    fn graph_round_trip() {
        let mapping = reader::from_turtle(DOC).unwrap();
        let graph = to_graph(&mapping);
        let reloaded = reader::from_graph(&graph).unwrap();
        assert_eq!(reloaded, mapping);
    }

    #[test]
    fn turtle_round_trip() {
        let mapping = reader::from_turtle(DOC).unwrap();
        let text = to_turtle(&mapping);
        let reloaded = reader::from_turtle(&text).unwrap();
        assert_eq!(reloaded, mapping);
    }

    #[test]
    fn turtle_uses_paper_vocabulary() {
        let mapping = reader::from_turtle(DOC).unwrap();
        let text = to_turtle(&mapping);
        assert!(text.contains("r3m:DatabaseMap"));
        assert!(text.contains("r3m:hasTableName"));
        assert!(text.contains("map:author"));
        assert!(text.contains("r3m:uriPattern"));
    }
}
