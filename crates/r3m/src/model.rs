//! The R3M mapping model (paper §4): `DatabaseMap`, `TableMap`,
//! `AttributeMap`, `LinkTableMap`, and recorded integrity constraints.
//!
//! R3M is *update-aware*: unlike read-only RDB2RDF languages it records
//! the schema's integrity constraints so the translator can detect
//! invalid update requests before they reach the database and produce
//! semantically rich feedback.

use crate::uri_pattern::UriPattern;
use rdf::Iri;

/// Constraint information recorded on an [`AttributeMap`]
/// (`r3m:hasConstraint`, Listing 3). Mirrors the paper's supported set:
/// `r3m:PrimaryKey`, `r3m:ForeignKey`, `r3m:NotNull`, `r3m:Default`
/// (plus `r3m:Unique`, which the engine supports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintInfo {
    /// Attribute is (part of) the primary key.
    PrimaryKey,
    /// Attribute must not be NULL.
    NotNull,
    /// Attribute has a schema default; inserts may omit it.
    Default {
        /// Rendered default value, when recorded.
        value: Option<String>,
    },
    /// Attribute is unique.
    Unique,
    /// Attribute references another mapped table (`r3m:references`
    /// points at the target `TableMap`/`LinkTableMap` node).
    ForeignKey {
        /// IRI of the referenced map node.
        references: Iri,
    },
    /// Row-level CHECK constraint recorded for feedback purposes
    /// (an answer to the paper's §8 question about "other database
    /// constraints such as assertions"). The predicate is carried as
    /// SQL text; enforcement happens in the engine.
    Check {
        /// Constraint name.
        name: String,
        /// SQL predicate text.
        predicate: String,
    },
}

impl ConstraintInfo {
    /// Short name matching the R3M vocabulary class.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ConstraintInfo::PrimaryKey => "PrimaryKey",
            ConstraintInfo::NotNull => "NotNull",
            ConstraintInfo::Default { .. } => "Default",
            ConstraintInfo::Unique => "Unique",
            ConstraintInfo::ForeignKey { .. } => "ForeignKey",
            ConstraintInfo::Check { .. } => "Check",
        }
    }
}

/// Whether an attribute maps to a data or an object property
/// (`r3m:mapsToDataProperty` vs `r3m:mapsToObjectProperty`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyMapping {
    /// Attribute values become literals.
    Data(Iri),
    /// Attribute values become instance IRIs (foreign keys).
    Object(Iri),
}

impl PropertyMapping {
    /// The mapped property IRI.
    pub fn property(&self) -> &Iri {
        match self {
            PropertyMapping::Data(iri) | PropertyMapping::Object(iri) => iri,
        }
    }

    /// Whether this is an object property mapping.
    pub fn is_object(&self) -> bool {
        matches!(self, PropertyMapping::Object(_))
    }
}

/// Mapping of one database attribute (paper Listings 3 and 5).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeMap {
    /// Node identifying this map in the mapping document (e.g.
    /// `map:author_team`).
    pub id: Iri,
    /// Database attribute name (`r3m:hasAttributeName`).
    pub attribute_name: String,
    /// Mapped ontology property — absent for link-table attributes,
    /// which "are not mapped to any property but record the names of the
    /// attributes and the tables they reference" (§4).
    pub property: Option<PropertyMapping>,
    /// Value-level URI pattern (`r3m:valuePattern`) for object
    /// properties whose objects are *derived IRIs* rather than row
    /// instances — the use case's `email → foaf:mbox` with objects like
    /// `mailto:hert@ifi.uzh.ch` (pattern `mailto:%%email%%`). A small
    /// extension over the paper's published vocabulary; its prototype
    /// needs the same ability to translate Listing 9 into Listing 10.
    /// The pattern must reference exactly this attribute.
    pub value_pattern: Option<crate::uri_pattern::UriPattern>,
    /// Recorded constraints.
    pub constraints: Vec<ConstraintInfo>,
}

impl AttributeMap {
    /// Whether a constraint of the given kind is recorded.
    pub fn has_constraint(&self, kind: &str) -> bool {
        self.constraints.iter().any(|c| c.kind_name() == kind)
    }

    /// Whether this attribute is (part of) the primary key.
    pub fn is_primary_key(&self) -> bool {
        self.has_constraint("PrimaryKey")
    }

    /// Whether this attribute is NOT NULL.
    pub fn is_not_null(&self) -> bool {
        self.has_constraint("NotNull")
    }

    /// Whether this attribute has a schema default.
    pub fn has_default(&self) -> bool {
        self.has_constraint("Default")
    }

    /// The referenced map node if this attribute is a foreign key.
    pub fn foreign_key_target(&self) -> Option<&Iri> {
        self.constraints.iter().find_map(|c| match c {
            ConstraintInfo::ForeignKey { references } => Some(references),
            _ => None,
        })
    }
}

/// Mapping of one concept table to an ontology class (paper Listing 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TableMap {
    /// Node identifying this map (e.g. `map:author`).
    pub id: Iri,
    /// Database table name (`r3m:hasTableName`).
    pub table_name: String,
    /// Mapped ontology class (`r3m:mapsToClass`).
    pub class: Iri,
    /// Instance URI pattern (`r3m:uriPattern`).
    pub uri_pattern: UriPattern,
    /// Attribute maps (`r3m:hasAttribute`).
    pub attributes: Vec<AttributeMap>,
}

impl TableMap {
    /// Attribute map by database attribute name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeMap> {
        self.attributes.iter().find(|a| a.attribute_name == name)
    }

    /// Attribute map by mapped ontology property.
    pub fn attribute_for_property(&self, property: &Iri) -> Option<&AttributeMap> {
        self.attributes
            .iter()
            .find(|a| a.property.as_ref().map(PropertyMapping::property) == Some(property))
    }

    /// Primary-key attribute names.
    pub fn primary_key_attributes(&self) -> Vec<&str> {
        self.attributes
            .iter()
            .filter(|a| a.is_primary_key())
            .map(|a| a.attribute_name.as_str())
            .collect()
    }
}

/// Mapping of an N:M link table to a single object property (paper
/// Listing 4): a row becomes one triple `subject property object`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTableMap {
    /// Node identifying this map (e.g. `map:publication_author`).
    pub id: Iri,
    /// Database table name.
    pub table_name: String,
    /// Mapped object property (`r3m:mapsToObjectProperty`, e.g.
    /// `dc:creator`).
    pub property: Iri,
    /// Attribute whose FK target provides the triple *subject*
    /// (`r3m:hasSubjectAttribute`).
    pub subject_attribute: AttributeMap,
    /// Attribute whose FK target provides the triple *object*
    /// (`r3m:hasObjectAttribute`).
    pub object_attribute: AttributeMap,
}

/// A complete R3M mapping (`r3m:DatabaseMap`, paper Listing 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Node identifying the database map (e.g. `map:database`).
    pub id: Iri,
    /// `r3m:jdbcDriver` (connection metadata, carried verbatim).
    pub jdbc_driver: Option<String>,
    /// `r3m:jdbcUrl`.
    pub jdbc_url: Option<String>,
    /// `r3m:username`.
    pub username: Option<String>,
    /// `r3m:password`.
    pub password: Option<String>,
    /// Mapping-wide URI prefix for instance URIs (`r3m:uriPrefix`).
    pub uri_prefix: Option<String>,
    /// Concept table maps.
    pub tables: Vec<TableMap>,
    /// Link table maps.
    pub link_tables: Vec<LinkTableMap>,
}

impl Mapping {
    /// Table map by database table name.
    pub fn table(&self, table_name: &str) -> Option<&TableMap> {
        self.tables.iter().find(|t| t.table_name == table_name)
    }

    /// Table map by its mapping-document node.
    pub fn table_by_id(&self, id: &Iri) -> Option<&TableMap> {
        self.tables.iter().find(|t| &t.id == id)
    }

    /// Table map by mapped ontology class.
    pub fn table_by_class(&self, class: &Iri) -> Option<&TableMap> {
        self.tables.iter().find(|t| &t.class == class)
    }

    /// Link table map by database table name.
    pub fn link_table(&self, table_name: &str) -> Option<&LinkTableMap> {
        self.link_tables.iter().find(|t| t.table_name == table_name)
    }

    /// Link table map by mapped object property.
    pub fn link_table_by_property(&self, property: &Iri) -> Option<&LinkTableMap> {
        self.link_tables.iter().find(|t| &t.property == property)
    }

    /// Identify the table an instance URI belongs to (Algorithm 1 step
    /// 2), returning the table map and the attribute values extracted
    /// from the URI (e.g. `author1` → table `author`, `id = "1"`).
    ///
    /// When several patterns match (the use case's `pub%%id%%` also
    /// matches `publisher3` and `pubtype4`), the pattern with the most
    /// literal text wins — the most specific one; ties resolve in
    /// declaration order.
    pub fn identify(&self, uri: &Iri) -> Option<(&TableMap, Vec<(String, String)>)> {
        type Match<'a> = (usize, &'a TableMap, Vec<(String, String)>);
        let mut best: Option<Match<'_>> = None;
        for table in &self.tables {
            if let Some(values) = table
                .uri_pattern
                .match_uri(self.uri_prefix.as_deref(), uri.as_str())
            {
                let literal_len: usize = table
                    .uri_pattern
                    .segments()
                    .iter()
                    .map(|s| match s {
                        crate::uri_pattern::Segment::Literal(text) => text.len(),
                        crate::uri_pattern::Segment::Attribute(_) => 0,
                    })
                    .sum();
                if best.as_ref().is_none_or(|(len, _, _)| literal_len > *len) {
                    best = Some((literal_len, table, values));
                }
            }
        }
        best.map(|(_, table, values)| (table, values))
    }

    /// Generate the instance URI for a row of `table`, looking up
    /// attribute values through `lookup`.
    pub fn instance_uri(
        &self,
        table: &TableMap,
        lookup: &dyn Fn(&str) -> Option<std::borrow::Cow<'static, str>>,
    ) -> Result<Iri, crate::uri_pattern::PatternError> {
        let uri = table
            .uri_pattern
            .generate(self.uri_prefix.as_deref(), lookup)?;
        Iri::parse(uri).map_err(|e| crate::uri_pattern::PatternError {
            message: format!("generated URI is invalid: {e}"),
        })
    }

    /// Canonicalize ordering: tables and link tables by name, attributes
    /// by name, constraints by kind. Equality of two mappings that
    /// describe the same structure is then structural equality.
    pub fn normalize(&mut self) {
        fn sort_attr(attr: &mut AttributeMap) {
            attr.constraints
                .sort_by(|a, b| a.kind_name().cmp(b.kind_name()));
        }
        self.tables.sort_by(|a, b| a.table_name.cmp(&b.table_name));
        self.link_tables
            .sort_by(|a, b| a.table_name.cmp(&b.table_name));
        for table in &mut self.tables {
            table
                .attributes
                .sort_by(|a, b| a.attribute_name.cmp(&b.attribute_name));
            for attr in &mut table.attributes {
                sort_attr(attr);
            }
        }
        for link in &mut self.link_tables {
            sort_attr(&mut link.subject_attribute);
            sort_attr(&mut link.object_attribute);
        }
    }

    /// All properties used by this mapping (data, object, and link-table
    /// properties), deduplicated.
    pub fn properties(&self) -> Vec<&Iri> {
        let mut out: Vec<&Iri> = Vec::new();
        for t in &self.tables {
            for a in &t.attributes {
                if let Some(p) = &a.property {
                    let iri = p.property();
                    if !out.contains(&iri) {
                        out.push(iri);
                    }
                }
            }
        }
        for lt in &self.link_tables {
            if !out.contains(&&lt.property) {
                out.push(&lt.property);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::namespace::{foaf, ont};

    fn map_iri(local: &str) -> Iri {
        Iri::parse(format!("http://example.org/map#{local}")).unwrap()
    }

    fn author_table() -> TableMap {
        TableMap {
            id: map_iri("author"),
            table_name: "author".into(),
            class: foaf::Person(),
            uri_pattern: UriPattern::parse("author%%id%%").unwrap(),
            attributes: vec![
                AttributeMap {
                    id: map_iri("author_id"),
                    attribute_name: "id".into(),
                    property: None,
                    value_pattern: None,
                    constraints: vec![ConstraintInfo::PrimaryKey],
                },
                AttributeMap {
                    id: map_iri("author_lastname"),
                    attribute_name: "lastname".into(),
                    property: Some(PropertyMapping::Data(foaf::family_name())),
                    value_pattern: None,
                    constraints: vec![ConstraintInfo::NotNull],
                },
                AttributeMap {
                    id: map_iri("author_team"),
                    attribute_name: "team".into(),
                    property: Some(PropertyMapping::Object(ont::team())),
                    value_pattern: None,
                    constraints: vec![ConstraintInfo::ForeignKey {
                        references: map_iri("team"),
                    }],
                },
            ],
        }
    }

    fn team_table() -> TableMap {
        TableMap {
            id: map_iri("team"),
            table_name: "team".into(),
            class: foaf::Group(),
            uri_pattern: UriPattern::parse("team%%id%%").unwrap(),
            attributes: vec![AttributeMap {
                id: map_iri("team_id"),
                attribute_name: "id".into(),
                property: None,
                value_pattern: None,
                constraints: vec![ConstraintInfo::PrimaryKey],
            }],
        }
    }

    fn mapping() -> Mapping {
        Mapping {
            id: map_iri("database"),
            jdbc_driver: Some("com.mysql.jdbc.Driver".into()),
            jdbc_url: Some("jdbc:mysql://localhost/db".into()),
            username: Some("user".into()),
            password: Some("pw".into()),
            uri_prefix: Some("http://example.org/db/".into()),
            tables: vec![author_table(), team_table()],
            link_tables: vec![],
        }
    }

    #[test]
    fn identify_matches_algorithm_1_example() {
        let m = mapping();
        let uri = Iri::parse("http://example.org/db/author1").unwrap();
        let (table, values) = m.identify(&uri).unwrap();
        assert_eq!(table.table_name, "author");
        assert_eq!(values, vec![("id".into(), "1".into())]);
    }

    #[test]
    fn identify_unknown_uri_is_none() {
        let m = mapping();
        let uri = Iri::parse("http://example.org/db/nothing9").unwrap();
        assert!(m.identify(&uri).is_none());
    }

    #[test]
    fn attribute_lookup_by_property() {
        let t = author_table();
        let a = t.attribute_for_property(&ont::team()).unwrap();
        assert_eq!(a.attribute_name, "team");
        assert!(t.attribute_for_property(&foaf::mbox()).is_none());
    }

    #[test]
    fn constraint_accessors() {
        let t = author_table();
        assert!(t.attribute("id").unwrap().is_primary_key());
        assert!(t.attribute("lastname").unwrap().is_not_null());
        assert_eq!(
            t.attribute("team").unwrap().foreign_key_target(),
            Some(&map_iri("team"))
        );
        assert_eq!(t.primary_key_attributes(), vec!["id"]);
    }

    #[test]
    fn instance_uri_generation() {
        let m = mapping();
        let t = m.table("author").unwrap();
        let uri = m
            .instance_uri(t, &|attr| (attr == "id").then(|| "6".into()))
            .unwrap();
        assert_eq!(uri.as_str(), "http://example.org/db/author6");
    }

    #[test]
    fn lookup_by_class_and_id() {
        let m = mapping();
        assert_eq!(
            m.table_by_class(&foaf::Person())
                .map(|t| t.table_name.as_str()),
            Some("author")
        );
        assert_eq!(
            m.table_by_id(&map_iri("team"))
                .map(|t| t.table_name.as_str()),
            Some("team")
        );
    }

    #[test]
    fn properties_deduplicated() {
        let m = mapping();
        let props = m.properties();
        assert!(props.contains(&&foaf::family_name()));
        assert!(props.contains(&&ont::team()));
        assert_eq!(props.len(), 2);
    }
}
