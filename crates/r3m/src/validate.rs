//! Validation of an R3M mapping against the relational schema it claims
//! to describe.
//!
//! The translator trusts the mapping (step 3 of Algorithm 1 checks
//! requests against *mapping-recorded* constraints), so a mapping that
//! disagrees with the schema would let invalid updates through to the
//! database — or reject valid ones. This module cross-checks the two up
//! front.

use crate::model::{AttributeMap, ConstraintInfo, Mapping};
use rel::Schema;
use std::fmt;

/// Severity of a validation finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Mapping unusable: the translator would misbehave.
    Error,
    /// Suspicious but workable (e.g. a NOT NULL the mapping does not
    /// record — the database would still reject the insert, only the
    /// early check and feedback quality degrade).
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Issue {
    /// Severity.
    pub severity: Severity,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

/// Validate `mapping` against `schema`, returning all findings.
pub fn validate(mapping: &Mapping, schema: &Schema) -> Vec<Issue> {
    let mut issues = Vec::new();
    let error = |issues: &mut Vec<Issue>, message: String| {
        issues.push(Issue {
            severity: Severity::Error,
            message,
        })
    };
    let warn = |issues: &mut Vec<Issue>, message: String| {
        issues.push(Issue {
            severity: Severity::Warning,
            message,
        })
    };

    // Classes must be unambiguous (identification in Algorithm 1 relies
    // on class → table resolution for inserts).
    for (i, a) in mapping.tables.iter().enumerate() {
        for b in &mapping.tables[i + 1..] {
            if a.class == b.class {
                error(
                    &mut issues,
                    format!(
                        "tables {:?} and {:?} both map to class {}",
                        a.table_name, b.table_name, b.class
                    ),
                );
            }
        }
    }

    for table_map in &mapping.tables {
        let table = match schema.table(&table_map.table_name) {
            Ok(t) => t,
            Err(_) => {
                error(
                    &mut issues,
                    format!(
                        "mapped table {:?} does not exist in the schema",
                        table_map.table_name
                    ),
                );
                continue;
            }
        };

        // URI pattern attributes must exist and should cover the PK.
        for attr in table_map.uri_pattern.attributes() {
            if table.column(attr).is_none() {
                error(
                    &mut issues,
                    format!(
                        "uriPattern of {:?} references missing attribute {attr:?}",
                        table_map.table_name
                    ),
                );
            }
        }
        for pk in &table.primary_key {
            if !table_map.uri_pattern.attributes().contains(&pk.as_str()) {
                warn(
                    &mut issues,
                    format!(
                        "uriPattern of {:?} does not include primary key attribute {pk:?}; \
                         instance URIs will not identify rows",
                        table_map.table_name
                    ),
                );
            }
        }

        // Properties must be unambiguous within a table.
        for (i, a) in table_map.attributes.iter().enumerate() {
            if let Some(pa) = &a.property {
                for b in &table_map.attributes[i + 1..] {
                    if let Some(pb) = &b.property {
                        if pa.property() == pb.property() {
                            error(
                                &mut issues,
                                format!(
                                    "attributes {:?} and {:?} of table {:?} both map to {}",
                                    a.attribute_name,
                                    b.attribute_name,
                                    table_map.table_name,
                                    pa.property()
                                ),
                            );
                        }
                    }
                }
            }
        }

        for attr in &table_map.attributes {
            validate_attribute(mapping, schema, &table_map.table_name, attr, &mut issues);
        }

        // Every schema constraint should be recorded for early checking.
        for column in &table.columns {
            let Some(attr) = table_map.attribute(&column.name) else {
                warn(
                    &mut issues,
                    format!(
                        "schema attribute {}.{} is not mapped; its values are \
                         unreachable from the ontology",
                        table_map.table_name, column.name
                    ),
                );
                continue;
            };
            if column.not_null && !table.is_primary_key(&column.name) && !attr.is_not_null() {
                warn(
                    &mut issues,
                    format!(
                        "schema declares {}.{} NOT NULL but the mapping does not record it",
                        table_map.table_name, column.name
                    ),
                );
            }
            if table.is_primary_key(&column.name) && !attr.is_primary_key() {
                error(
                    &mut issues,
                    format!(
                        "schema declares {}.{} as primary key but the mapping does not",
                        table_map.table_name, column.name
                    ),
                );
            }
            if column.default.is_some() && !attr.has_default() {
                warn(
                    &mut issues,
                    format!(
                        "schema declares a default for {}.{} but the mapping does not record it",
                        table_map.table_name, column.name
                    ),
                );
            }
        }
    }

    for link in &mapping.link_tables {
        let table = match schema.table(&link.table_name) {
            Ok(t) => t,
            Err(_) => {
                error(
                    &mut issues,
                    format!(
                        "mapped link table {:?} does not exist in the schema",
                        link.table_name
                    ),
                );
                continue;
            }
        };
        for attr in [&link.subject_attribute, &link.object_attribute] {
            if table.column(&attr.attribute_name).is_none() {
                error(
                    &mut issues,
                    format!(
                        "link table {:?}: attribute {:?} does not exist",
                        link.table_name, attr.attribute_name
                    ),
                );
            }
            validate_attribute(mapping, schema, &link.table_name, attr, &mut issues);
        }
        if mapping
            .tables
            .iter()
            .any(|t| t.attribute_for_property(&link.property).is_some())
        {
            error(
                &mut issues,
                format!(
                    "link table property {} is also mapped by a table attribute",
                    link.property
                ),
            );
        }
    }

    issues
}

fn validate_attribute(
    mapping: &Mapping,
    schema: &Schema,
    table_name: &str,
    attr: &AttributeMap,
    issues: &mut Vec<Issue>,
) {
    let Ok(table) = schema.table(table_name) else {
        return;
    };
    if table.column(&attr.attribute_name).is_none() {
        issues.push(Issue {
            severity: Severity::Error,
            message: format!(
                "mapped attribute {}.{} does not exist in the schema",
                table_name, attr.attribute_name
            ),
        });
        return;
    }
    for constraint in &attr.constraints {
        match constraint {
            ConstraintInfo::ForeignKey { references } => {
                // The mapping-side FK must exist in the schema …
                let Some(fk) = table.foreign_key_on(&attr.attribute_name) else {
                    issues.push(Issue {
                        severity: Severity::Error,
                        message: format!(
                            "mapping records a foreign key on {}.{} but the schema has none",
                            table_name, attr.attribute_name
                        ),
                    });
                    continue;
                };
                // … and point at the map node of the referenced table.
                let target_ok = mapping
                    .table_by_id(references)
                    .map(|t| t.table_name == fk.ref_table)
                    .or_else(|| {
                        mapping
                            .link_tables
                            .iter()
                            .find(|lt| &lt.id == references)
                            .map(|lt| lt.table_name == fk.ref_table)
                    });
                match target_ok {
                    Some(true) => {}
                    Some(false) => issues.push(Issue {
                        severity: Severity::Error,
                        message: format!(
                            "foreign key on {}.{} references the wrong table map \
                             (schema points at {:?})",
                            table_name, attr.attribute_name, fk.ref_table
                        ),
                    }),
                    None => issues.push(Issue {
                        severity: Severity::Error,
                        message: format!(
                            "foreign key on {}.{} references unknown map node {}",
                            table_name, attr.attribute_name, references
                        ),
                    }),
                }
            }
            ConstraintInfo::NotNull => {
                let column = table.column(&attr.attribute_name).expect("checked above");
                if !column.not_null && !table.is_primary_key(&attr.attribute_name) {
                    issues.push(Issue {
                        severity: Severity::Warning,
                        message: format!(
                            "mapping records NOT NULL on {}.{} but the schema does not \
                             declare it; the early check is stricter than the database",
                            table_name, attr.attribute_name
                        ),
                    });
                }
            }
            ConstraintInfo::PrimaryKey => {
                if !table.is_primary_key(&attr.attribute_name) {
                    issues.push(Issue {
                        severity: Severity::Error,
                        message: format!(
                            "mapping records {}.{} as primary key but the schema does not",
                            table_name, attr.attribute_name
                        ),
                    });
                }
            }
            ConstraintInfo::Check { name, .. } => {
                if !table.checks.iter().any(|c| &c.name == name) {
                    issues.push(Issue {
                        severity: Severity::Warning,
                        message: format!(
                            "mapping records CHECK {name:?} on {}.{} but the schema \
                             declares no such constraint",
                            table_name, attr.attribute_name
                        ),
                    });
                }
            }
            ConstraintInfo::Unique | ConstraintInfo::Default { .. } => {}
        }
    }
}

/// Validate and fail on the first error (warnings are returned alongside
/// `Ok`).
pub fn validate_strict(mapping: &Mapping, schema: &Schema) -> Result<Vec<Issue>, Issue> {
    let issues = validate(mapping, schema);
    if let Some(first_error) = issues
        .iter()
        .find(|i| i.severity == Severity::Error)
        .cloned()
    {
        Err(first_error)
    } else {
        Ok(issues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use rel::{Column, SqlType, Table, Value};

    fn schema() -> Schema {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("lastname", SqlType::Varchar).not_null())
                    .column(Column::new("rank", SqlType::Integer).default_value(Value::Int(0)))
                    .column(Column::new("team", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("team", "team", "id")
                    .build(),
            )
            .unwrap();
        schema
    }

    fn valid_mapping() -> Mapping {
        generate(&schema(), &GeneratorConfig::new()).unwrap()
    }

    #[test]
    fn generated_mapping_is_clean() {
        let issues = validate(&valid_mapping(), &schema());
        assert!(
            issues.iter().all(|i| i.severity != Severity::Error),
            "unexpected errors: {issues:?}"
        );
        assert!(validate_strict(&valid_mapping(), &schema()).is_ok());
    }

    #[test]
    fn missing_table_is_error() {
        let mut m = valid_mapping();
        m.tables[0].table_name = "ghost".into();
        let err = validate_strict(&m, &schema()).unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn missing_attribute_is_error() {
        let mut m = valid_mapping();
        let author = m
            .tables
            .iter_mut()
            .find(|t| t.table_name == "author")
            .unwrap();
        author.attributes[1].attribute_name = "ghost".into();
        assert!(validate_strict(&m, &schema()).is_err());
    }

    #[test]
    fn duplicate_class_is_error() {
        let mut m = valid_mapping();
        let class = m.tables[0].class.clone();
        m.tables[1].class = class;
        assert!(validate_strict(&m, &schema()).is_err());
    }

    #[test]
    fn duplicate_property_within_table_is_error() {
        let mut m = valid_mapping();
        let author = m
            .tables
            .iter_mut()
            .find(|t| t.table_name == "author")
            .unwrap();
        let p = author
            .attribute("lastname")
            .unwrap()
            .property
            .clone()
            .unwrap();
        let rank = author
            .attributes
            .iter_mut()
            .find(|a| a.attribute_name == "rank")
            .unwrap();
        rank.property = Some(p);
        assert!(validate_strict(&m, &schema()).is_err());
    }

    #[test]
    fn fk_to_wrong_map_node_is_error() {
        let mut m = valid_mapping();
        let bogus = rdf::Iri::parse("http://example.org/map#nothing").unwrap();
        let author = m
            .tables
            .iter_mut()
            .find(|t| t.table_name == "author")
            .unwrap();
        let team_attr = author
            .attributes
            .iter_mut()
            .find(|a| a.attribute_name == "team")
            .unwrap();
        team_attr.constraints = vec![ConstraintInfo::ForeignKey { references: bogus }];
        assert!(validate_strict(&m, &schema()).is_err());
    }

    #[test]
    fn unrecorded_not_null_is_warning() {
        let mut m = valid_mapping();
        let author = m
            .tables
            .iter_mut()
            .find(|t| t.table_name == "author")
            .unwrap();
        let lastname = author
            .attributes
            .iter_mut()
            .find(|a| a.attribute_name == "lastname")
            .unwrap();
        lastname.constraints.clear();
        let issues = validate(&m, &schema());
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.message.contains("NOT NULL")));
        // Warnings alone don't fail strict validation.
        assert!(validate_strict(&m, &schema()).is_ok());
    }

    #[test]
    fn pattern_missing_pk_is_warning() {
        let mut m = valid_mapping();
        let team = m
            .tables
            .iter_mut()
            .find(|t| t.table_name == "team")
            .unwrap();
        team.uri_pattern = crate::uri_pattern::UriPattern::parse("team%%name%%").unwrap();
        let issues = validate(&m, &schema());
        assert!(issues
            .iter()
            .any(|i| i.message.contains("does not include primary key")));
    }

    #[test]
    fn unmapped_schema_attribute_is_warning() {
        let mut m = valid_mapping();
        let team = m
            .tables
            .iter_mut()
            .find(|t| t.table_name == "team")
            .unwrap();
        team.attributes.retain(|a| a.attribute_name != "name");
        let issues = validate(&m, &schema());
        assert!(issues
            .iter()
            .any(|i| i.severity == Severity::Warning && i.message.contains("not mapped")));
    }

    #[test]
    fn mapping_side_fk_without_schema_fk_is_error() {
        let mut m = valid_mapping();
        let team_map_id = m.table("team").unwrap().id.clone();
        let team = m
            .tables
            .iter_mut()
            .find(|t| t.table_name == "team")
            .unwrap();
        let name_attr = team
            .attributes
            .iter_mut()
            .find(|a| a.attribute_name == "name")
            .unwrap();
        name_attr.constraints.push(ConstraintInfo::ForeignKey {
            references: team_map_id,
        });
        assert!(validate_strict(&m, &schema()).is_err());
    }
}
