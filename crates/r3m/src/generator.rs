//! Automatic mapping generation from a relational schema (paper §4:
//! "A basic R3M mapping can be generated automatically from the database
//! schema if it explicitly provides information about foreign key
//! relationships. The only part … that cannot easily be automated is the
//! assignment of domain ontology terms").
//!
//! Generated maps use synthetic ontology terms under a vocabulary base
//! (`<base>Author`, `<base>author_lastname`, …); callers then rebind the
//! terms to real domain vocabulary (as the paper's Table 1 does with
//! FOAF/DC) via [`GeneratorConfig::class_override`] /
//! [`GeneratorConfig::property_override`].

use crate::model::{
    AttributeMap, ConstraintInfo, LinkTableMap, Mapping, PropertyMapping, TableMap,
};
use crate::uri_pattern::UriPattern;
use rdf::Iri;
use rel::{Schema, SqlType, Table};
use std::collections::BTreeMap;

/// Configuration of the mapping generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Base IRI for mapping nodes (`map:` namespace), e.g.
    /// `http://example.org/map#`.
    pub map_base: String,
    /// Base IRI for generated vocabulary terms, e.g.
    /// `http://example.org/vocab#`.
    pub vocab_base: String,
    /// Mapping-wide URI prefix for instance URIs (`r3m:uriPrefix`).
    pub uri_prefix: String,
    /// Ontology class overrides per table name.
    pub class_overrides: BTreeMap<String, Iri>,
    /// Ontology property overrides per `(table, attribute)`.
    pub property_overrides: BTreeMap<(String, String), Iri>,
}

impl GeneratorConfig {
    /// Defaults rooted at `http://example.org/`.
    pub fn new() -> Self {
        GeneratorConfig {
            map_base: "http://example.org/map#".into(),
            vocab_base: "http://example.org/vocab#".into(),
            uri_prefix: "http://example.org/db/".into(),
            class_overrides: BTreeMap::new(),
            property_overrides: BTreeMap::new(),
        }
    }

    /// Map `table` to an existing domain class instead of a generated
    /// term.
    pub fn class_override(mut self, table: &str, class: Iri) -> Self {
        self.class_overrides.insert(table.to_owned(), class);
        self
    }

    /// Map `table.attribute` to an existing domain property.
    pub fn property_override(mut self, table: &str, attribute: &str, property: Iri) -> Self {
        self.property_overrides
            .insert((table.to_owned(), attribute.to_owned()), property);
        self
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Error from mapping generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateError {
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mapping generation failed: {}", self.message)
    }
}

impl std::error::Error for GenerateError {}

/// Generate a basic R3M mapping for `schema`.
///
/// Tables with exactly two foreign-key attributes, both NOT NULL or
/// PK-participating, and no other data attributes besides an optional
/// surrogate `id`, are detected as **link tables** (the
/// `publication_author` shape of Figure 1) and mapped to object
/// properties; every other table becomes a `TableMap` with the pattern
/// `<table>%%<pk>%%`.
pub fn generate(schema: &Schema, config: &GeneratorConfig) -> Result<Mapping, GenerateError> {
    schema.validate().map_err(|e| GenerateError {
        message: e.to_string(),
    })?;
    let mut mapping = Mapping {
        id: iri(&config.map_base, "database")?,
        jdbc_driver: None,
        jdbc_url: None,
        username: None,
        password: None,
        uri_prefix: Some(config.uri_prefix.clone()),
        tables: Vec::new(),
        link_tables: Vec::new(),
    };
    for table in schema.tables() {
        if is_link_table(table) {
            mapping
                .link_tables
                .push(generate_link_table(table, config)?);
        } else {
            mapping.tables.push(generate_table(table, config)?);
        }
    }
    Ok(mapping)
}

fn is_link_table(table: &Table) -> bool {
    if table.foreign_keys.len() != 2 {
        return false;
    }
    let fk_columns: Vec<&str> = table
        .foreign_keys
        .iter()
        .map(|f| f.column.as_str())
        .collect();
    table
        .columns
        .iter()
        .all(|c| fk_columns.contains(&c.name.as_str()) || table.is_primary_key(&c.name))
}

fn generate_table(table: &Table, config: &GeneratorConfig) -> Result<TableMap, GenerateError> {
    let pk = match table.primary_key.as_slice() {
        [one] => one.clone(),
        [] => {
            return Err(GenerateError {
                message: format!("table {:?} has no primary key", table.name),
            })
        }
        _ => {
            return Err(GenerateError {
                message: format!(
                    "table {:?}: composite primary keys need a hand-written uriPattern",
                    table.name
                ),
            })
        }
    };
    let class = config
        .class_overrides
        .get(&table.name)
        .cloned()
        .map(Ok)
        .unwrap_or_else(|| iri(&config.vocab_base, &capitalize(&table.name)))?;
    let mut attributes = Vec::new();
    for column in &table.columns {
        attributes.push(generate_attribute(table, &column.name, config, true)?);
    }
    Ok(TableMap {
        id: iri(&config.map_base, &table.name)?,
        table_name: table.name.clone(),
        class,
        uri_pattern: UriPattern::parse(&format!("{}%%{}%%", table.name, pk)).map_err(|e| {
            GenerateError {
                message: e.to_string(),
            }
        })?,
        attributes,
    })
}

fn generate_link_table(
    table: &Table,
    config: &GeneratorConfig,
) -> Result<LinkTableMap, GenerateError> {
    let property = config
        .property_overrides
        .get(&(table.name.clone(), String::new()))
        .cloned()
        .map(Ok)
        .unwrap_or_else(|| iri(&config.vocab_base, &table.name))?;
    let subject_fk = &table.foreign_keys[0];
    let object_fk = &table.foreign_keys[1];
    Ok(LinkTableMap {
        id: iri(&config.map_base, &table.name)?,
        table_name: table.name.clone(),
        property,
        subject_attribute: generate_attribute(table, &subject_fk.column, config, false)?,
        object_attribute: generate_attribute(table, &object_fk.column, config, false)?,
    })
}

fn generate_attribute(
    table: &Table,
    column_name: &str,
    config: &GeneratorConfig,
    with_property: bool,
) -> Result<AttributeMap, GenerateError> {
    let column = table
        .column(column_name)
        .expect("column name comes from the table");
    let mut constraints = Vec::new();
    if table.is_primary_key(column_name) {
        constraints.push(ConstraintInfo::PrimaryKey);
    }
    if column.not_null && !table.is_primary_key(column_name) {
        constraints.push(ConstraintInfo::NotNull);
    }
    if column.unique {
        constraints.push(ConstraintInfo::Unique);
    }
    if let Some(default) = &column.default {
        constraints.push(ConstraintInfo::Default {
            value: Some(default_lexical(default)),
        });
    }
    let fk = table.foreign_key_on(column_name);
    if let Some(fk) = fk {
        constraints.push(ConstraintInfo::ForeignKey {
            references: iri(&config.map_base, &fk.ref_table)?,
        });
    }
    // PK surrogates without FK carry no property: they surface only
    // through the instance URI. FK attributes become object properties,
    // everything else data properties.
    let property = if !with_property || (table.is_primary_key(column_name) && fk.is_none()) {
        None
    } else {
        let term = config
            .property_overrides
            .get(&(table.name.clone(), column_name.to_owned()))
            .cloned()
            .map(Ok)
            .unwrap_or_else(|| iri(&config.vocab_base, &format!("{}_{column_name}", table.name)))?;
        Some(if fk.is_some() {
            PropertyMapping::Object(term)
        } else {
            PropertyMapping::Data(term)
        })
    };
    Ok(AttributeMap {
        id: iri(&config.map_base, &format!("{}_{column_name}", table.name))?,
        attribute_name: column_name.to_owned(),
        property,
        value_pattern: None,
        constraints,
    })
}

fn default_lexical(v: &rel::Value) -> String {
    match v {
        rel::Value::Text(s) => s.as_str().to_owned(),
        other => other.to_string(),
    }
}

fn iri(base: &str, local: &str) -> Result<Iri, GenerateError> {
    Iri::parse(format!("{base}{local}")).map_err(|e| GenerateError {
        message: e.to_string(),
    })
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Column type hint for an attribute — generation helpers exposed for
/// validation and tests.
pub fn expected_value_kind(ty: SqlType) -> &'static str {
    match ty {
        SqlType::Integer => "integer",
        SqlType::Varchar => "string",
        SqlType::Boolean => "boolean",
        SqlType::Double => "double",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::namespace::{dc, foaf};
    use rel::{Column, Value};

    fn schema() -> Schema {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("lastname", SqlType::Varchar).not_null())
                    .column(Column::new("rank", SqlType::Integer).default_value(Value::Int(0)))
                    .column(Column::new("team", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("team", "team", "id")
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("publication")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("title", SqlType::Varchar).not_null())
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("publication_author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("publication", SqlType::Integer).not_null())
                    .column(Column::new("author", SqlType::Integer).not_null())
                    .primary_key(&["id"])
                    .foreign_key("publication", "publication", "id")
                    .foreign_key("author", "author", "id")
                    .build(),
            )
            .unwrap();
        schema
    }

    #[test]
    fn generates_table_maps_and_detects_link_table() {
        let m = generate(&schema(), &GeneratorConfig::new()).unwrap();
        assert_eq!(m.tables.len(), 3);
        assert_eq!(m.link_tables.len(), 1);
        assert_eq!(m.link_tables[0].table_name, "publication_author");
        assert_eq!(
            m.link_tables[0].subject_attribute.attribute_name,
            "publication"
        );
        assert_eq!(m.link_tables[0].object_attribute.attribute_name, "author");
    }

    #[test]
    fn constraints_carried_over() {
        let m = generate(&schema(), &GeneratorConfig::new()).unwrap();
        let author = m.table("author").unwrap();
        assert!(author.attribute("id").unwrap().is_primary_key());
        assert!(author.attribute("lastname").unwrap().is_not_null());
        assert!(author.attribute("rank").unwrap().has_default());
        assert_eq!(
            author
                .attribute("team")
                .unwrap()
                .foreign_key_target()
                .map(|i| i.as_str()),
            Some("http://example.org/map#team")
        );
    }

    #[test]
    fn pk_without_fk_has_no_property() {
        let m = generate(&schema(), &GeneratorConfig::new()).unwrap();
        assert!(m
            .table("author")
            .unwrap()
            .attribute("id")
            .unwrap()
            .property
            .is_none());
    }

    #[test]
    fn fk_becomes_object_property_data_becomes_data_property() {
        let m = generate(&schema(), &GeneratorConfig::new()).unwrap();
        let author = m.table("author").unwrap();
        assert!(author
            .attribute("team")
            .unwrap()
            .property
            .as_ref()
            .unwrap()
            .is_object());
        assert!(!author
            .attribute("lastname")
            .unwrap()
            .property
            .as_ref()
            .unwrap()
            .is_object());
    }

    #[test]
    fn uri_pattern_follows_table_and_pk() {
        let m = generate(&schema(), &GeneratorConfig::new()).unwrap();
        assert_eq!(
            m.table("author").unwrap().uri_pattern.source(),
            "author%%id%%"
        );
    }

    #[test]
    fn overrides_rebind_to_domain_vocabulary() {
        let config = GeneratorConfig::new()
            .class_override("author", foaf::Person())
            .property_override("author", "lastname", foaf::family_name())
            .property_override("publication_author", "", dc::creator());
        let m = generate(&schema(), &config).unwrap();
        assert_eq!(m.table("author").unwrap().class, foaf::Person());
        assert_eq!(
            m.table("author")
                .unwrap()
                .attribute("lastname")
                .unwrap()
                .property
                .as_ref()
                .unwrap()
                .property(),
            &foaf::family_name()
        );
        assert_eq!(m.link_tables[0].property, dc::creator());
    }

    #[test]
    fn generated_mapping_round_trips_through_rdf() {
        let m = generate(&schema(), &GeneratorConfig::new()).unwrap();
        let text = crate::writer::to_turtle(&m);
        let reloaded = crate::reader::from_turtle(&text).unwrap();
        // Reader normalizes ordering; normalize the generated one too.
        let mut original = m;
        original.normalize();
        assert_eq!(reloaded, original);
    }

    #[test]
    fn table_without_pk_is_error() {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("nopk")
                    .column(Column::new("x", SqlType::Integer))
                    .build(),
            )
            .unwrap();
        assert!(generate(&schema, &GeneratorConfig::new())
            .unwrap_err()
            .message
            .contains("no primary key"));
    }
}
