//! Load an R3M mapping from its RDF representation (paper §4,
//! Listings 1-5).

use crate::model::{
    AttributeMap, ConstraintInfo, LinkTableMap, Mapping, PropertyMapping, TableMap,
};
use crate::uri_pattern::UriPattern;
use rdf::namespace::{r3m, rdf_type, PrefixMap};
use rdf::{Graph, Iri, Term};
use std::fmt;

/// Error loading a mapping document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingError {
    /// Explanation (includes the offending node where possible).
    pub message: String,
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid R3M mapping: {}", self.message)
    }
}

impl std::error::Error for MappingError {}

fn err(message: impl Into<String>) -> MappingError {
    MappingError {
        message: message.into(),
    }
}

/// Parse a mapping from Turtle text (with the common vocabulary prefixes
/// preloaded, so documents may use `r3m:`, `foaf:` etc. without
/// declaring them).
pub fn from_turtle(text: &str) -> Result<Mapping, MappingError> {
    let (graph, _) = rdf::turtle::parse_with_prefixes(text, PrefixMap::common())
        .map_err(|e| err(format!("turtle parse failed: {e}")))?;
    from_graph(&graph)
}

/// Extract the mapping from an RDF graph. The graph must contain exactly
/// one `r3m:DatabaseMap`.
pub fn from_graph(graph: &Graph) -> Result<Mapping, MappingError> {
    let db_nodes = graph.subjects_with(&rdf_type(), &Term::Iri(r3m::DatabaseMap()));
    let db_node = match db_nodes.as_slice() {
        [] => return Err(err("no r3m:DatabaseMap found")),
        [one] => one.clone(),
        many => {
            return Err(err(format!(
                "expected exactly one r3m:DatabaseMap, found {}",
                many.len()
            )))
        }
    };
    let id = node_iri(&db_node, "DatabaseMap")?;

    let mut mapping = Mapping {
        id,
        jdbc_driver: string_prop(graph, &db_node, &r3m::jdbcDriver()),
        jdbc_url: string_prop(graph, &db_node, &r3m::jdbcUrl()),
        username: string_prop(graph, &db_node, &r3m::username()),
        password: string_prop(graph, &db_node, &r3m::password()),
        uri_prefix: string_prop(graph, &db_node, &r3m::uriPrefix()),
        tables: Vec::new(),
        link_tables: Vec::new(),
    };

    for table_node in graph.objects(&db_node, &r3m::hasTable()) {
        let types: Vec<Term> = graph.objects(&table_node, &rdf_type());
        if types.contains(&Term::Iri(r3m::LinkTableMap())) {
            mapping
                .link_tables
                .push(read_link_table(graph, &table_node)?);
        } else if types.contains(&Term::Iri(r3m::TableMap())) {
            mapping.tables.push(read_table(graph, &table_node)?);
        } else {
            return Err(err(format!(
                "{table_node} is neither r3m:TableMap nor r3m:LinkTableMap"
            )));
        }
    }
    // Deterministic order independent of graph iteration details.
    mapping.normalize();
    Ok(mapping)
}

fn read_table(graph: &Graph, node: &Term) -> Result<TableMap, MappingError> {
    let id = node_iri(node, "TableMap")?;
    let table_name = string_prop(graph, node, &r3m::hasTableName())
        .ok_or_else(|| err(format!("{node} lacks r3m:hasTableName")))?;
    let class = iri_prop(graph, node, &r3m::mapsToClass())
        .ok_or_else(|| err(format!("{node} lacks r3m:mapsToClass")))?;
    let pattern_text = string_prop(graph, node, &r3m::uriPattern())
        .ok_or_else(|| err(format!("{node} lacks r3m:uriPattern")))?;
    let uri_pattern = UriPattern::parse(&pattern_text).map_err(|e| err(format!("{node}: {e}")))?;
    let mut attributes = Vec::new();
    for attr_node in graph.objects(node, &r3m::hasAttribute()) {
        attributes.push(read_attribute(graph, &attr_node)?);
    }
    attributes.sort_by(|a, b| a.attribute_name.cmp(&b.attribute_name));
    Ok(TableMap {
        id,
        table_name,
        class,
        uri_pattern,
        attributes,
    })
}

fn read_link_table(graph: &Graph, node: &Term) -> Result<LinkTableMap, MappingError> {
    let id = node_iri(node, "LinkTableMap")?;
    let table_name = string_prop(graph, node, &r3m::hasTableName())
        .ok_or_else(|| err(format!("{node} lacks r3m:hasTableName")))?;
    let property = iri_prop(graph, node, &r3m::mapsToObjectProperty())
        .ok_or_else(|| err(format!("{node} lacks r3m:mapsToObjectProperty")))?;
    let subject_node = graph
        .object(node, &r3m::hasSubjectAttribute())
        .ok_or_else(|| err(format!("{node} lacks r3m:hasSubjectAttribute")))?;
    let object_node = graph
        .object(node, &r3m::hasObjectAttribute())
        .ok_or_else(|| err(format!("{node} lacks r3m:hasObjectAttribute")))?;
    let subject_attribute = read_attribute(graph, &subject_node)?;
    let object_attribute = read_attribute(graph, &object_node)?;
    if subject_attribute.foreign_key_target().is_none() {
        return Err(err(format!(
            "link table {table_name}: subject attribute {:?} must carry a ForeignKey constraint",
            subject_attribute.attribute_name
        )));
    }
    if object_attribute.foreign_key_target().is_none() {
        return Err(err(format!(
            "link table {table_name}: object attribute {:?} must carry a ForeignKey constraint",
            object_attribute.attribute_name
        )));
    }
    Ok(LinkTableMap {
        id,
        table_name,
        property,
        subject_attribute,
        object_attribute,
    })
}

fn read_attribute(graph: &Graph, node: &Term) -> Result<AttributeMap, MappingError> {
    let id = node_iri(node, "AttributeMap")?;
    let attribute_name = string_prop(graph, node, &r3m::hasAttributeName())
        .ok_or_else(|| err(format!("{node} lacks r3m:hasAttributeName")))?;
    let data = iri_prop(graph, node, &r3m::mapsToDataProperty());
    let object = iri_prop(graph, node, &r3m::mapsToObjectProperty());
    let property = match (data, object) {
        (Some(_), Some(_)) => {
            return Err(err(format!(
                "{node} maps to both a data and an object property"
            )))
        }
        (Some(p), None) => Some(PropertyMapping::Data(p)),
        (None, Some(p)) => Some(PropertyMapping::Object(p)),
        (None, None) => None,
    };
    let value_pattern = match string_prop(graph, node, &r3m::valuePattern()) {
        Some(text) => Some(UriPattern::parse(&text).map_err(|e| err(format!("{node}: {e}")))?),
        None => None,
    };
    let mut constraints = Vec::new();
    for c_node in graph.objects(node, &r3m::hasConstraint()) {
        constraints.push(read_constraint(graph, &c_node)?);
    }
    constraints.sort_by_key(|c| c.kind_name().to_owned());
    Ok(AttributeMap {
        id,
        attribute_name,
        property,
        value_pattern,
        constraints,
    })
}

fn read_constraint(graph: &Graph, node: &Term) -> Result<ConstraintInfo, MappingError> {
    let types = graph.objects(node, &rdf_type());
    let ty = types
        .iter()
        .find_map(|t| t.as_iri())
        .ok_or_else(|| err(format!("constraint node {node} lacks rdf:type")))?;
    if ty == &r3m::PrimaryKey() {
        Ok(ConstraintInfo::PrimaryKey)
    } else if ty == &r3m::NotNull() {
        Ok(ConstraintInfo::NotNull)
    } else if ty == &r3m::Unique() {
        Ok(ConstraintInfo::Unique)
    } else if ty == &r3m::Default() {
        Ok(ConstraintInfo::Default {
            value: string_prop(graph, node, &r3m::hasValue()),
        })
    } else if ty == &r3m::Check() {
        let name = string_prop(graph, node, &r3m::hasName())
            .ok_or_else(|| err(format!("Check constraint {node} lacks r3m:hasName")))?;
        let predicate = string_prop(graph, node, &r3m::hasValue())
            .ok_or_else(|| err(format!("Check constraint {node} lacks r3m:hasValue")))?;
        Ok(ConstraintInfo::Check { name, predicate })
    } else if ty == &r3m::ForeignKey() {
        let references = iri_prop(graph, node, &r3m::references())
            .ok_or_else(|| err(format!("ForeignKey constraint {node} lacks r3m:references")))?;
        Ok(ConstraintInfo::ForeignKey { references })
    } else {
        Err(err(format!("unknown constraint type {ty}")))
    }
}

fn node_iri(node: &Term, what: &str) -> Result<Iri, MappingError> {
    node.as_iri()
        .cloned()
        .ok_or_else(|| err(format!("{what} node {node} must be an IRI")))
}

fn string_prop(graph: &Graph, node: &Term, property: &Iri) -> Option<String> {
    graph
        .object(node, property)?
        .as_literal()
        .map(|l| l.lexical().to_owned())
}

fn iri_prop(graph: &Graph, node: &Term, property: &Iri) -> Option<Iri> {
    graph.object(node, property)?.as_iri().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::namespace::{dc, foaf, ont};

    /// The paper's Listings 1-5 assembled into one document (author and
    /// team tables plus the publication_author link table).
    pub(crate) const PAPER_STYLE_MAPPING: &str = r#"
@prefix r3m:  <http://ontoaccess.org/r3m#> .
@prefix map:  <http://example.org/map#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix dc:   <http://purl.org/dc/elements/1.1/> .
@prefix ont:  <http://example.org/ontology#> .

map:database a r3m:DatabaseMap ;
    r3m:jdbcDriver "com.mysql.jdbc.Driver" ;
    r3m:jdbcUrl "jdbc:mysql://localhost/db" ;
    r3m:username "user" ;
    r3m:password "pw" ;
    r3m:uriPrefix "http://example.org/db/" ;
    r3m:hasTable map:author , map:team , map:publication_author .

map:author a r3m:TableMap ;
    r3m:hasTableName "author" ;
    r3m:mapsToClass foaf:Person ;
    r3m:uriPattern "author%%id%%" ;
    r3m:hasAttribute map:author_id , map:author_lastname , map:author_team .

map:author_id a r3m:AttributeMap ;
    r3m:hasAttributeName "id" ;
    r3m:hasConstraint [ a r3m:PrimaryKey ] .

map:author_lastname a r3m:AttributeMap ;
    r3m:hasAttributeName "lastname" ;
    r3m:mapsToDataProperty foaf:family_name ;
    r3m:hasConstraint [ a r3m:NotNull ] .

map:author_team a r3m:AttributeMap ;
    r3m:hasAttributeName "team" ;
    r3m:mapsToObjectProperty ont:team ;
    r3m:hasConstraint [ a r3m:ForeignKey ; r3m:references map:team ] .

map:team a r3m:TableMap ;
    r3m:hasTableName "team" ;
    r3m:mapsToClass foaf:Group ;
    r3m:uriPattern "team%%id%%" ;
    r3m:hasAttribute map:team_id , map:team_name .

map:team_id a r3m:AttributeMap ;
    r3m:hasAttributeName "id" ;
    r3m:hasConstraint [ a r3m:PrimaryKey ] .

map:team_name a r3m:AttributeMap ;
    r3m:hasAttributeName "name" ;
    r3m:mapsToDataProperty foaf:name .

map:publication_author a r3m:LinkTableMap ;
    r3m:hasTableName "publication_author" ;
    r3m:mapsToObjectProperty dc:creator ;
    r3m:hasSubjectAttribute map:pa_publication ;
    r3m:hasObjectAttribute map:pa_author .

map:pa_publication a r3m:AttributeMap ;
    r3m:hasAttributeName "publication" ;
    r3m:hasConstraint [ a r3m:ForeignKey ; r3m:references map:publication ] .

map:pa_author a r3m:AttributeMap ;
    r3m:hasAttributeName "author" ;
    r3m:hasConstraint [ a r3m:ForeignKey ; r3m:references map:author ] .
"#;

    #[test]
    fn loads_paper_style_document() {
        let m = from_turtle(PAPER_STYLE_MAPPING).unwrap();
        assert_eq!(m.uri_prefix.as_deref(), Some("http://example.org/db/"));
        assert_eq!(m.jdbc_driver.as_deref(), Some("com.mysql.jdbc.Driver"));
        assert_eq!(m.tables.len(), 2);
        assert_eq!(m.link_tables.len(), 1);

        let author = m.table("author").unwrap();
        assert_eq!(author.class, foaf::Person());
        assert_eq!(author.uri_pattern.source(), "author%%id%%");
        assert_eq!(author.attributes.len(), 3);
        assert!(author.attribute("id").unwrap().is_primary_key());
        assert!(author.attribute("lastname").unwrap().is_not_null());
        assert_eq!(
            author
                .attribute("lastname")
                .unwrap()
                .property
                .as_ref()
                .map(|p| p.property().clone()),
            Some(foaf::family_name())
        );
        let team_attr = author.attribute("team").unwrap();
        assert!(team_attr.property.as_ref().unwrap().is_object());
        assert_eq!(
            team_attr.foreign_key_target().map(|i| i.as_str()),
            Some("http://example.org/map#team")
        );

        let link = m.link_table("publication_author").unwrap();
        assert_eq!(link.property, dc::creator());
        assert_eq!(link.subject_attribute.attribute_name, "publication");
        assert_eq!(link.object_attribute.attribute_name, "author");

        // Cross-check model helpers against the loaded document.
        assert_eq!(
            m.table_by_class(&foaf::Group())
                .map(|t| t.table_name.as_str()),
            Some("team")
        );
        assert!(m.link_table_by_property(&dc::creator()).is_some());
        let _ = ont::team(); // used in document; keep the import honest
    }

    #[test]
    fn missing_database_map_is_error() {
        let doc = "@prefix r3m: <http://ontoaccess.org/r3m#> .\n\
                   <http://example.org/x> a r3m:TableMap .";
        assert!(from_turtle(doc)
            .unwrap_err()
            .message
            .contains("no r3m:DatabaseMap"));
    }

    #[test]
    fn two_database_maps_is_error() {
        let doc = "@prefix r3m: <http://ontoaccess.org/r3m#> .\n\
                   <http://example.org/a> a r3m:DatabaseMap .\n\
                   <http://example.org/b> a r3m:DatabaseMap .";
        assert!(from_turtle(doc)
            .unwrap_err()
            .message
            .contains("exactly one"));
    }

    #[test]
    fn table_without_name_is_error() {
        let doc = r#"
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/map#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
map:database a r3m:DatabaseMap ; r3m:hasTable map:t .
map:t a r3m:TableMap ; r3m:mapsToClass foaf:Person ; r3m:uriPattern "t%%id%%" .
"#;
        assert!(from_turtle(doc)
            .unwrap_err()
            .message
            .contains("hasTableName"));
    }

    #[test]
    fn attribute_with_both_property_kinds_is_error() {
        let doc = r#"
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/map#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
map:database a r3m:DatabaseMap ; r3m:hasTable map:t .
map:t a r3m:TableMap ; r3m:hasTableName "t" ; r3m:mapsToClass foaf:Person ;
    r3m:uriPattern "t%%id%%" ; r3m:hasAttribute map:a .
map:a a r3m:AttributeMap ; r3m:hasAttributeName "x" ;
    r3m:mapsToDataProperty foaf:name ; r3m:mapsToObjectProperty foaf:mbox .
"#;
        assert!(from_turtle(doc).unwrap_err().message.contains("both"));
    }

    #[test]
    fn unknown_constraint_type_is_error() {
        let doc = r#"
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/map#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
map:database a r3m:DatabaseMap ; r3m:hasTable map:t .
map:t a r3m:TableMap ; r3m:hasTableName "t" ; r3m:mapsToClass foaf:Person ;
    r3m:uriPattern "t%%id%%" ; r3m:hasAttribute map:a .
map:a a r3m:AttributeMap ; r3m:hasAttributeName "x" ;
    r3m:hasConstraint [ a r3m:Bogus ] .
"#;
        assert!(from_turtle(doc)
            .unwrap_err()
            .message
            .contains("unknown constraint"));
    }

    #[test]
    fn link_table_attrs_need_foreign_keys() {
        let doc = r#"
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/map#> .
@prefix dc: <http://purl.org/dc/elements/1.1/> .
map:database a r3m:DatabaseMap ; r3m:hasTable map:lt .
map:lt a r3m:LinkTableMap ; r3m:hasTableName "lt" ;
    r3m:mapsToObjectProperty dc:creator ;
    r3m:hasSubjectAttribute map:s ; r3m:hasObjectAttribute map:o .
map:s a r3m:AttributeMap ; r3m:hasAttributeName "s" .
map:o a r3m:AttributeMap ; r3m:hasAttributeName "o" .
"#;
        assert!(from_turtle(doc).unwrap_err().message.contains("ForeignKey"));
    }

    #[test]
    fn default_constraint_with_value() {
        let doc = r#"
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/map#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
map:database a r3m:DatabaseMap ; r3m:hasTable map:t .
map:t a r3m:TableMap ; r3m:hasTableName "t" ; r3m:mapsToClass foaf:Person ;
    r3m:uriPattern "t%%id%%" ; r3m:hasAttribute map:a .
map:a a r3m:AttributeMap ; r3m:hasAttributeName "rank" ;
    r3m:mapsToDataProperty foaf:title ;
    r3m:hasConstraint [ a r3m:Default ; r3m:hasValue "0" ] .
"#;
        let m = from_turtle(doc).unwrap();
        let attr = m.table("t").unwrap().attribute("rank").unwrap();
        assert!(attr.has_default());
        assert!(attr
            .constraints
            .iter()
            .any(|c| matches!(c, ConstraintInfo::Default { value: Some(v) } if v == "0")));
    }
}

#[cfg(test)]
mod check_constraint_tests {
    use super::*;
    use crate::model::ConstraintInfo;

    const DOC: &str = r#"
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/map#> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ont: <http://example.org/ontology#> .
map:database a r3m:DatabaseMap ; r3m:hasTable map:publication .
map:publication a r3m:TableMap ;
    r3m:hasTableName "publication" ;
    r3m:mapsToClass foaf:Document ;
    r3m:uriPattern "pub%%id%%" ;
    r3m:hasAttribute map:pub_id , map:pub_year .
map:pub_id a r3m:AttributeMap ;
    r3m:hasAttributeName "id" ;
    r3m:hasConstraint [ a r3m:PrimaryKey ] .
map:pub_year a r3m:AttributeMap ;
    r3m:hasAttributeName "year" ;
    r3m:mapsToDataProperty ont:pubYear ;
    r3m:hasConstraint [ a r3m:Check ; r3m:hasName "year_range" ;
                        r3m:hasValue "year >= 1900 AND year <= 2100" ] .
"#;

    #[test]
    fn check_constraint_round_trips() {
        let mapping = from_turtle(DOC).unwrap();
        let attr = mapping
            .table("publication")
            .unwrap()
            .attribute("year")
            .unwrap();
        assert!(attr.constraints.iter().any(|c| matches!(
            c,
            ConstraintInfo::Check { name, predicate }
                if name == "year_range" && predicate.contains("1900")
        )));
        // Serialize and reload.
        let text = crate::writer::to_turtle(&mapping);
        let reloaded = from_turtle(&text).unwrap();
        assert_eq!(reloaded, mapping);
    }

    #[test]
    fn check_without_name_is_error() {
        let doc = DOC.replace("r3m:hasName \"year_range\" ;", "");
        assert!(from_turtle(&doc).unwrap_err().message.contains("hasName"));
    }
}
