//! R3M URI patterns (paper §4).
//!
//! A `TableMap` carries a URI pattern such as `author%%id%%`: literal text
//! interleaved with attribute placeholders between double percent signs.
//! The pattern is appended to the mapping-wide URI prefix — or *overrides*
//! it when the pattern itself forms an absolute URI (starts with a
//! scheme). Patterns both **generate** instance URIs from attribute
//! values and **match** incoming URIs back to attribute values (step 2 of
//! Algorithm 1: "the table affected by this group of triples is
//! identified through the URI of their subject").

use std::fmt;

/// One piece of a URI pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Literal text.
    Literal(String),
    /// `%%attribute%%` placeholder.
    Attribute(String),
}

/// A parsed URI pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UriPattern {
    source: String,
    segments: Vec<Segment>,
}

/// Error parsing a URI pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URI pattern: {}", self.message)
    }
}

impl std::error::Error for PatternError {}

impl UriPattern {
    /// Parse a pattern like `author%%id%%` or
    /// `http://example.org/db/team%%id%%`.
    pub fn parse(source: &str) -> Result<Self, PatternError> {
        if source.is_empty() {
            return Err(PatternError {
                message: "empty pattern".into(),
            });
        }
        let mut segments = Vec::new();
        let mut rest = source;
        loop {
            match rest.find("%%") {
                None => {
                    if !rest.is_empty() {
                        segments.push(Segment::Literal(rest.to_owned()));
                    }
                    break;
                }
                Some(start) => {
                    if start > 0 {
                        segments.push(Segment::Literal(rest[..start].to_owned()));
                    }
                    let after = &rest[start + 2..];
                    let end = after.find("%%").ok_or_else(|| PatternError {
                        message: format!("unterminated %% placeholder in {source:?}"),
                    })?;
                    let attr = &after[..end];
                    if attr.is_empty() {
                        return Err(PatternError {
                            message: format!("empty attribute placeholder in {source:?}"),
                        });
                    }
                    segments.push(Segment::Attribute(attr.to_owned()));
                    rest = &after[end + 2..];
                }
            }
        }
        // Two adjacent placeholders cannot be matched unambiguously.
        for pair in segments.windows(2) {
            if matches!(pair, [Segment::Attribute(_), Segment::Attribute(_)]) {
                return Err(PatternError {
                    message: format!("adjacent placeholders in {source:?} are ambiguous"),
                });
            }
        }
        Ok(UriPattern {
            source: source.to_owned(),
            segments,
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Attribute names referenced by the pattern, in order.
    pub fn attributes(&self) -> Vec<&str> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Attribute(a) => Some(a.as_str()),
                Segment::Literal(_) => None,
            })
            .collect()
    }

    /// Whether the pattern itself forms an absolute URI (then it
    /// overrides the mapping-wide prefix), per §4: "… or overrides it if
    /// the pattern itself forms a valid URI (i.e., if it starts with
    /// http://, mailto:, etc.)".
    pub fn is_absolute(&self) -> bool {
        let first = match self.segments.first() {
            Some(Segment::Literal(text)) => text,
            _ => return false,
        };
        let Some(colon) = first.find(':') else {
            return false;
        };
        let scheme = &first[..colon];
        !scheme.is_empty()
            && scheme
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
            && scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '.'))
    }

    /// The full template this pattern expands under `prefix` (prefix is
    /// ignored when the pattern is absolute).
    pub fn effective_template(&self, prefix: Option<&str>) -> String {
        if self.is_absolute() {
            self.source.clone()
        } else {
            format!("{}{}", prefix.unwrap_or(""), self.source)
        }
    }

    /// Generate a URI string by substituting attribute values.
    /// `lookup` maps an attribute name to its rendered value — a `Cow`
    /// so values materialized out of the string dictionary are borrowed
    /// rather than cloned per substitution.
    pub fn generate(
        &self,
        prefix: Option<&str>,
        lookup: &dyn Fn(&str) -> Option<std::borrow::Cow<'static, str>>,
    ) -> Result<String, PatternError> {
        let mut out = String::new();
        if !self.is_absolute() {
            out.push_str(prefix.unwrap_or(""));
        }
        for segment in &self.segments {
            match segment {
                Segment::Literal(text) => out.push_str(text),
                Segment::Attribute(attr) => {
                    let value = lookup(attr).ok_or_else(|| PatternError {
                        message: format!("no value for pattern attribute {attr:?}"),
                    })?;
                    out.push_str(&value);
                }
            }
        }
        Ok(out)
    }

    /// Match a URI against this pattern under `prefix`, extracting
    /// `(attribute, value)` pairs. Returns `None` when the URI does not
    /// fit the pattern.
    ///
    /// Placeholder matches are non-greedy up to the next literal segment;
    /// a trailing placeholder consumes the remainder.
    pub fn match_uri(&self, prefix: Option<&str>, uri: &str) -> Option<Vec<(String, String)>> {
        let mut rest = uri;
        if !self.is_absolute() {
            rest = rest.strip_prefix(prefix.unwrap_or(""))?;
        }
        let mut values = Vec::new();
        let mut i = 0;
        while i < self.segments.len() {
            match &self.segments[i] {
                Segment::Literal(text) => {
                    rest = rest.strip_prefix(text.as_str())?;
                    i += 1;
                }
                Segment::Attribute(attr) => {
                    // Find the next literal segment to delimit the value.
                    let delimiter = self.segments.get(i + 1).map(|s| match s {
                        Segment::Literal(text) => text.as_str(),
                        Segment::Attribute(_) => unreachable!("no adjacent placeholders"),
                    });
                    let value = match delimiter {
                        Some(delim) => {
                            let end = rest.find(delim)?;
                            let v = &rest[..end];
                            rest = &rest[end..];
                            v
                        }
                        None => {
                            let v = rest;
                            rest = "";
                            v
                        }
                    };
                    if value.is_empty() {
                        return None;
                    }
                    values.push(((*attr).clone(), value.to_owned()));
                    i += 1;
                }
            }
        }
        if rest.is_empty() {
            Some(values)
        } else {
            None
        }
    }
}

impl fmt::Display for UriPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PREFIX: &str = "http://example.org/db/";

    fn pattern(s: &str) -> UriPattern {
        UriPattern::parse(s).unwrap()
    }

    #[test]
    fn parse_paper_pattern() {
        let p = pattern("author%%id%%");
        assert_eq!(
            p.segments(),
            &[
                Segment::Literal("author".into()),
                Segment::Attribute("id".into())
            ]
        );
        assert_eq!(p.attributes(), vec!["id"]);
        assert!(!p.is_absolute());
    }

    #[test]
    fn generate_matches_paper_example() {
        let p = pattern("author%%id%%");
        let uri = p
            .generate(Some(PREFIX), &|attr| (attr == "id").then(|| "6".into()))
            .unwrap();
        assert_eq!(uri, "http://example.org/db/author6");
    }

    #[test]
    fn match_extracts_pk_value() {
        // Algorithm 1's example: author1 → table author, id = 1.
        let p = pattern("author%%id%%");
        let values = p
            .match_uri(Some(PREFIX), "http://example.org/db/author1")
            .unwrap();
        assert_eq!(values, vec![("id".into(), "1".into())]);
    }

    #[test]
    fn mismatched_uri_is_none() {
        let p = pattern("author%%id%%");
        assert_eq!(
            p.match_uri(Some(PREFIX), "http://example.org/db/team1"),
            None
        );
        assert_eq!(
            p.match_uri(Some(PREFIX), "http://other.org/db/author1"),
            None
        );
        assert_eq!(
            p.match_uri(Some(PREFIX), "http://example.org/db/author"),
            None
        );
    }

    #[test]
    fn absolute_pattern_overrides_prefix() {
        let p = pattern("http://other.org/team%%id%%");
        assert!(p.is_absolute());
        let uri = p.generate(Some(PREFIX), &|_| Some("4".into())).unwrap();
        assert_eq!(uri, "http://other.org/team4");
        assert!(p
            .match_uri(Some(PREFIX), "http://other.org/team4")
            .is_some());
    }

    #[test]
    fn mailto_pattern_is_absolute() {
        assert!(pattern("mailto:%%email%%").is_absolute());
    }

    #[test]
    fn multi_attribute_pattern() {
        let p = pattern("pub%%publication%%-a%%author%%");
        let uri = p
            .generate(Some(PREFIX), &|attr| match attr {
                "publication" => Some("12".into()),
                "author" => Some("6".into()),
                _ => None,
            })
            .unwrap();
        assert_eq!(uri, "http://example.org/db/pub12-a6");
        let values = p.match_uri(Some(PREFIX), &uri).unwrap();
        assert_eq!(
            values,
            vec![
                ("publication".into(), "12".into()),
                ("author".into(), "6".into())
            ]
        );
    }

    #[test]
    fn round_trip_property() {
        let p = pattern("team%%id%%");
        for id in ["1", "42", "999"] {
            let uri = p
                .generate(Some(PREFIX), &|_| Some(id.to_owned().into()))
                .unwrap();
            let values = p.match_uri(Some(PREFIX), &uri).unwrap();
            assert_eq!(values, vec![("id".into(), id.to_owned())]);
        }
    }

    #[test]
    fn rejects_unterminated_placeholder() {
        assert!(UriPattern::parse("author%%id").is_err());
    }

    #[test]
    fn rejects_empty_placeholder() {
        assert!(UriPattern::parse("author%%%%").is_err());
    }

    #[test]
    fn rejects_adjacent_placeholders() {
        assert!(UriPattern::parse("%%a%%%%b%%").is_err());
    }

    #[test]
    fn rejects_empty_pattern() {
        assert!(UriPattern::parse("").is_err());
    }

    #[test]
    fn generate_fails_on_missing_value() {
        let p = pattern("author%%id%%");
        assert!(p.generate(Some(PREFIX), &|_| None).is_err());
    }

    #[test]
    fn empty_captured_value_rejected_on_match() {
        let p = pattern("a%%x%%b");
        assert_eq!(p.match_uri(Some(""), "ab"), None);
        assert!(p.match_uri(Some(""), "a1b").is_some());
    }

    #[test]
    fn effective_template() {
        assert_eq!(
            pattern("author%%id%%").effective_template(Some(PREFIX)),
            "http://example.org/db/author%%id%%"
        );
        assert_eq!(
            pattern("http://x.org/%%id%%").effective_template(Some(PREFIX)),
            "http://x.org/%%id%%"
        );
    }
}
