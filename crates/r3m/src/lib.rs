//! R3M — the update-aware RDB→RDF mapping language of OntoAccess (Hert,
//! Reif, Gall: *Updating Relational Data via SPARQL/Update*, EDBT 2010,
//! §4).
//!
//! R3M maps database tables to ontology classes and attributes to
//! properties, with explicit support for N:M link tables (mapped to
//! object properties) and — the update-aware part — recorded integrity
//! constraints (`PrimaryKey`, `ForeignKey`, `NotNull`, `Default`,
//! `Unique`) that let the translator reject invalid updates before they
//! reach the database and explain *why*.
//!
//! * [`model`] — the mapping data model
//! * [`uri_pattern`] — `author%%id%%`-style instance URI patterns
//! * [`reader`] / [`writer`] — the RDF syntax (paper Listings 1-5)
//! * [`generator`] — automatic mapping generation from a schema
//! * [`mod@validate`] — cross-checking mapping against schema

#![warn(missing_docs)]

pub mod generator;
pub mod model;
pub mod reader;
pub mod uri_pattern;
pub mod validate;
pub mod writer;

pub use generator::{generate, GenerateError, GeneratorConfig};
pub use model::{AttributeMap, ConstraintInfo, LinkTableMap, Mapping, PropertyMapping, TableMap};
pub use reader::{from_graph, from_turtle, MappingError};
pub use uri_pattern::{PatternError, Segment, UriPattern};
pub use validate::{validate, validate_strict, Issue, Severity};
pub use writer::{to_graph, to_turtle};
