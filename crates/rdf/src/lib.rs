//! RDF substrate for the OntoAccess reproduction (Hert, Reif, Gall:
//! *Updating Relational Data via SPARQL/Update*, EDBT 2010).
//!
//! Provides the RDF 1.0 term model ([`Iri`], [`Literal`], [`BlankNode`],
//! [`Term`], [`Triple`]), an indexed in-memory [`Graph`], well-known
//! vocabularies including the paper's R3M mapping vocabulary
//! ([`namespace`]), and Turtle / N-Triples I/O ([`turtle`], [`ntriples`]).
//!
//! The paper's Java prototype relied on a Jena-style RDF stack; this crate
//! is its from-scratch Rust replacement, sized to exactly what the
//! mediator, the R3M mapping loader, and the native triple store baseline
//! need.

#![warn(missing_docs)]

pub mod graph;
pub mod iri;
pub mod literal;
pub mod namespace;
pub mod ntriples;
pub mod term;
pub mod triple;

/// Turtle parsing and serialization.
pub mod turtle {
    pub mod lexer;
    pub mod parser;
    pub mod writer;

    pub use lexer::{LexError, Lexer, Token, TokenKind};
    pub use parser::{parse, parse_with_prefixes, ParseError};
    pub use writer::{render_iri, render_literal, render_term, write};
}

pub use graph::Graph;
pub use iri::{Iri, IriParseError};
pub use literal::{Literal, LiteralKind};
pub use namespace::PrefixMap;
pub use term::{BlankNode, Term};
pub use triple::Triple;
