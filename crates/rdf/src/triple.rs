//! RDF triples.

use crate::iri::Iri;
use crate::term::Term;
use std::fmt;

/// An RDF triple (subject, predicate, object).
///
/// Predicates are always IRIs per the RDF abstract syntax; subjects are
/// restricted to IRIs/blank nodes by [`Triple::new`] in debug builds.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject: IRI or blank node.
    pub subject: Term,
    /// Predicate IRI.
    pub predicate: Iri,
    /// Object: any term.
    pub object: Term,
}

impl Triple {
    /// Create a triple. Debug-asserts the subject is not a literal.
    pub fn new(subject: impl Into<Term>, predicate: Iri, object: impl Into<Term>) -> Self {
        let subject = subject.into();
        debug_assert!(
            subject.is_subject_term(),
            "literal in subject position: {subject}"
        );
        Triple {
            subject,
            predicate,
            object: object.into(),
        }
    }

    /// Destructure into `(subject, predicate, object)`.
    pub fn into_parts(self) -> (Term, Iri, Term) {
        (self.subject, self.predicate, self.object)
    }
}

impl fmt::Display for Triple {
    /// N-Triples-compatible rendering (`S P O .`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::foaf;

    #[test]
    fn display_is_ntriples() {
        let t = Triple::new(
            Term::iri("http://example.org/db/author6"),
            foaf::mbox(),
            Term::iri("mailto:hert@ifi.uzh.ch"),
        );
        assert_eq!(
            t.to_string(),
            "<http://example.org/db/author6> <http://xmlns.com/foaf/0.1/mbox> <mailto:hert@ifi.uzh.ch> ."
        );
    }

    #[test]
    #[should_panic(expected = "literal in subject position")]
    fn literal_subject_panics_in_debug() {
        let _ = Triple::new(Term::plain("nope"), foaf::name(), Term::plain("x"));
    }

    #[test]
    fn into_parts_round_trip() {
        let t = Triple::new(Term::blank("b"), foaf::name(), Term::plain("x"));
        let (s, p, o) = t.clone().into_parts();
        assert_eq!(Triple::new(s, p, o), t);
    }
}
