//! RDF literals: plain (optionally language-tagged) and typed.

use crate::iri::Iri;
use crate::namespace::{xsd, xsd_is_integer};
use std::borrow::Cow;
use std::fmt;

/// An RDF literal value.
///
/// The lexical form is stored verbatim; typed accessors ([`Literal::as_int`]
/// etc.) parse on demand. Equality is structural (same lexical form, same
/// datatype/language), matching RDF term equality as used by
/// `DELETE DATA` — the paper removes *known* triples, so `"5"` and `"05"`
/// are distinct terms even though they denote the same integer.
///
/// The lexical form is a `Cow<'static, str>` so literals materialized
/// out of dictionary-interned storage ([`Literal::plain_shared`],
/// [`Literal::string_shared`]) borrow the single interned copy instead
/// of cloning; parser-built literals own their form as before. `Cow`
/// compares and hashes by content, so equality semantics are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Cow<'static, str>,
    kind: LiteralKind,
}

/// Datatype or language qualification of a literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// Plain literal without language tag: `"abc"`.
    Plain,
    /// Plain literal with language tag: `"abc"@en`.
    LanguageTagged(String),
    /// Typed literal: `"5"^^xsd:int`.
    Typed(Iri),
}

impl Literal {
    /// A plain literal (no language tag, no datatype).
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: Cow::Owned(lexical.into()),
            kind: LiteralKind::Plain,
        }
    }

    /// A plain literal borrowing a `'static` lexical form — used when
    /// materializing results out of the string dictionary, where the
    /// interned copy outlives the process and cloning would be waste.
    pub fn plain_shared(lexical: &'static str) -> Self {
        Literal {
            lexical: Cow::Borrowed(lexical),
            kind: LiteralKind::Plain,
        }
    }

    /// An `xsd:string`-typed literal borrowing a `'static` lexical form
    /// (dictionary-backed counterpart of [`Literal::string`]).
    pub fn string_shared(lexical: &'static str) -> Self {
        Literal {
            lexical: Cow::Borrowed(lexical),
            kind: LiteralKind::Typed(xsd::string()),
        }
    }

    /// A language-tagged literal. Tags are normalized to lowercase per
    /// RDF concepts §6.
    pub fn lang(lexical: impl Into<String>, tag: impl Into<String>) -> Self {
        Literal {
            lexical: Cow::Owned(lexical.into()),
            kind: LiteralKind::LanguageTagged(tag.into().to_ascii_lowercase()),
        }
    }

    /// A typed literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: Iri) -> Self {
        Literal {
            lexical: Cow::Owned(lexical.into()),
            kind: LiteralKind::Typed(datatype),
        }
    }

    /// An `xsd:integer`-typed literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), xsd::integer())
    }

    /// An `xsd:int`-typed literal (the datatype Figure 2 uses).
    pub fn int(value: i32) -> Self {
        Literal::typed(value.to_string(), xsd::int())
    }

    /// An `xsd:boolean`-typed literal.
    pub fn boolean(value: bool) -> Self {
        Literal::typed(value.to_string(), xsd::boolean())
    }

    /// An `xsd:double`-typed literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(format!("{value:?}"), xsd::double())
    }

    /// An `xsd:string`-typed literal.
    pub fn string(value: impl Into<String>) -> Self {
        Literal::typed(value, xsd::string())
    }

    /// The lexical form, verbatim.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The datatype/language qualification.
    pub fn kind(&self) -> &LiteralKind {
        &self.kind
    }

    /// The datatype IRI if this is a typed literal.
    pub fn datatype(&self) -> Option<&Iri> {
        match &self.kind {
            LiteralKind::Typed(dt) => Some(dt),
            _ => None,
        }
    }

    /// The language tag if present.
    pub fn language(&self) -> Option<&str> {
        match &self.kind {
            LiteralKind::LanguageTagged(tag) => Some(tag),
            _ => None,
        }
    }

    /// Whether this literal is plain or `xsd:string`-typed — both map to
    /// `VARCHAR` attributes in R3M.
    pub fn is_stringy(&self) -> bool {
        match &self.kind {
            LiteralKind::Plain | LiteralKind::LanguageTagged(_) => true,
            LiteralKind::Typed(dt) => dt == &xsd::string(),
        }
    }

    /// Parse the lexical form as a 64-bit integer if the datatype is one of
    /// the XSD integer types (or the literal is plain and numeric).
    pub fn as_int(&self) -> Option<i64> {
        match &self.kind {
            LiteralKind::Typed(dt) if xsd_is_integer(dt) => self.lexical.trim().parse().ok(),
            LiteralKind::Plain => self.lexical.trim().parse().ok(),
            _ => None,
        }
    }

    /// Parse the lexical form as a double if numeric.
    pub fn as_double(&self) -> Option<f64> {
        match &self.kind {
            LiteralKind::Typed(dt)
                if xsd_is_integer(dt)
                    || dt == &xsd::double()
                    || dt == &xsd::decimal()
                    || dt == &xsd::float() =>
            {
                self.lexical.trim().parse().ok()
            }
            LiteralKind::Plain => self.lexical.trim().parse().ok(),
            _ => None,
        }
    }

    /// Parse the lexical form as a boolean if `xsd:boolean`.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.kind {
            LiteralKind::Typed(dt) if dt == &xsd::boolean() => match self.lexical.trim() {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            },
            _ => None,
        }
    }

    /// "Value equality" used by SPARQL `FILTER (?x = ...)`: numeric
    /// literals compare by value, everything else by term equality.
    pub fn value_eq(&self, other: &Literal) -> bool {
        if let (Some(a), Some(b)) = (self.as_int(), other.as_int()) {
            return a == b;
        }
        if let (Some(a), Some(b)) = (self.as_double(), other.as_double()) {
            return a == b;
        }
        self == other
    }
}

/// Escape a string for output inside double quotes (Turtle/N-Triples/SQL
/// feedback messages share this).
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

impl fmt::Display for Literal {
    /// N-Triples/Turtle-compatible rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        match &self.kind {
            LiteralKind::Plain => Ok(()),
            LiteralKind::LanguageTagged(tag) => write!(f, "@{tag}"),
            LiteralKind::Typed(dt) => write!(f, "^^{dt}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_display() {
        assert_eq!(Literal::plain("Mr").to_string(), "\"Mr\"");
    }

    #[test]
    fn lang_display_and_normalization() {
        let lit = Literal::lang("Hallo", "DE");
        assert_eq!(lit.to_string(), "\"Hallo\"@de");
        assert_eq!(lit.language(), Some("de"));
    }

    #[test]
    fn typed_display() {
        let lit = Literal::integer(2009);
        assert_eq!(
            lit.to_string(),
            "\"2009\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn escaping() {
        let lit = Literal::plain("a\"b\\c\nd");
        assert_eq!(lit.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn as_int_typed() {
        assert_eq!(Literal::integer(42).as_int(), Some(42));
        assert_eq!(Literal::int(7).as_int(), Some(7));
    }

    #[test]
    fn as_int_plain() {
        // The paper's Listing 15 writes `ont:pubYear "2009"` as a plain
        // literal that must land in an INTEGER column.
        assert_eq!(Literal::plain("2009").as_int(), Some(2009));
        assert_eq!(Literal::plain("abc").as_int(), None);
    }

    #[test]
    fn as_bool() {
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::plain("true").as_bool(), None);
    }

    #[test]
    fn term_equality_is_structural() {
        assert_ne!(Literal::plain("5"), Literal::integer(5));
        assert_ne!(Literal::integer(5), Literal::typed("05", xsd::integer()));
    }

    #[test]
    fn value_equality_is_numeric() {
        assert!(Literal::integer(5).value_eq(&Literal::typed("05", xsd::integer())));
        assert!(Literal::plain("5").value_eq(&Literal::integer(5)));
        assert!(!Literal::plain("x").value_eq(&Literal::plain("y")));
    }

    #[test]
    fn stringy() {
        assert!(Literal::plain("a").is_stringy());
        assert!(Literal::string("a").is_stringy());
        assert!(!Literal::integer(1).is_stringy());
    }
}
