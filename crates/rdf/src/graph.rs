//! Indexed in-memory RDF graph.
//!
//! The graph keeps three permutation indexes (SPO, POS, OSP) so that any
//! triple pattern with at least one bound position is answered without a
//! full scan. This is the storage layer of the native triple store used as
//! the paper's comparison point (§3: "compared to their application in a
//! native triple store") and the backing store for R3M mapping documents.

use crate::iri::Iri;
use crate::term::Term;
use crate::triple::Triple;
use std::collections::{BTreeMap, BTreeSet};

type Index = BTreeMap<Term, BTreeMap<Term, BTreeSet<Term>>>;

/// An in-memory set of RDF triples with SPO/POS/OSP indexes.
///
/// Iteration order is deterministic (term order), which keeps downstream
/// SQL generation stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    spo: Index,
    pos: Index,
    osp: Index,
    len: usize,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a triple. Returns `true` if it was not already present.
    pub fn insert(&mut self, triple: Triple) -> bool {
        let Triple {
            subject,
            predicate,
            object,
        } = triple;
        let p = Term::Iri(predicate);
        let added = insert_into(&mut self.spo, &subject, &p, &object);
        if added {
            insert_into(&mut self.pos, &p, &object, &subject);
            insert_into(&mut self.osp, &object, &subject, &p);
            self.len += 1;
        }
        added
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let p = Term::Iri(triple.predicate.clone());
        let removed = remove_from(&mut self.spo, &triple.subject, &p, &triple.object);
        if removed {
            remove_from(&mut self.pos, &p, &triple.object, &triple.subject);
            remove_from(&mut self.osp, &triple.object, &triple.subject, &p);
            self.len -= 1;
        }
        removed
    }

    /// Whether the triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        let p = Term::Iri(triple.predicate.clone());
        self.spo
            .get(&triple.subject)
            .and_then(|po| po.get(&p))
            .is_some_and(|os| os.contains(&triple.object))
    }

    /// Iterate all triples in deterministic (S, P, O) order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().flat_map(|(s, po)| {
            po.iter().flat_map(move |(p, os)| {
                let p = match p {
                    Term::Iri(iri) => iri.clone(),
                    _ => unreachable!("predicate index holds only IRIs"),
                };
                os.iter().map({
                    let s = s.clone();
                    move |o| Triple::new(s.clone(), p.clone(), o.clone())
                })
            })
        })
    }

    /// Match a triple pattern; `None` positions are wildcards.
    ///
    /// Chooses the index that binds the most significant position:
    /// S→SPO, P→POS, O→OSP, otherwise full iteration.
    pub fn matching(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let p_term = predicate.map(|p| Term::Iri(p.clone()));
        match (subject, &p_term, object) {
            (Some(s), _, _) => self.scan_two(&self.spo, s, p_term.as_ref(), object, |a, b, c| {
                (a.clone(), b.clone(), c.clone())
            }),
            (None, Some(p), _) => self.scan_two(&self.pos, p, object, None, |a, b, c| {
                (c.clone(), a.clone(), b.clone())
            }),
            (None, None, Some(o)) => self.scan_two(&self.osp, o, None, None, |a, b, c| {
                (b.clone(), c.clone(), a.clone())
            }),
            (None, None, None) => self.iter().collect(),
        }
    }

    /// All triples with the given subject.
    pub fn triples_for_subject(&self, subject: &Term) -> Vec<Triple> {
        self.matching(Some(subject), None, None)
    }

    /// Distinct subjects in the graph.
    pub fn subjects(&self) -> impl Iterator<Item = &Term> {
        self.spo.keys()
    }

    /// Objects of `(subject, predicate, ?)` — common accessor when reading
    /// mapping documents.
    pub fn objects(&self, subject: &Term, predicate: &Iri) -> Vec<Term> {
        let p = Term::Iri(predicate.clone());
        self.spo
            .get(subject)
            .and_then(|po| po.get(&p))
            .map(|os| os.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// First object of `(subject, predicate, ?)`, if any.
    pub fn object(&self, subject: &Term, predicate: &Iri) -> Option<Term> {
        self.objects(subject, predicate).into_iter().next()
    }

    /// Subjects of `(?, predicate, object)`.
    pub fn subjects_with(&self, predicate: &Iri, object: &Term) -> Vec<Term> {
        self.matching(None, Some(predicate), Some(object))
            .into_iter()
            .map(|t| t.subject)
            .collect()
    }

    /// Insert every triple of `other` into `self`.
    pub fn extend_from(&mut self, other: &Graph) {
        for t in other.iter() {
            self.insert(t);
        }
    }

    /// Remove all triples.
    pub fn clear(&mut self) {
        self.spo.clear();
        self.pos.clear();
        self.osp.clear();
        self.len = 0;
    }

    // Scan `index[k1]`, optionally fixing the second and third levels.
    // `rebuild` maps (k1, k2, k3) in index order back to (s, p, o).
    fn scan_two(
        &self,
        index: &Index,
        k1: &Term,
        k2: Option<&Term>,
        k3: Option<&Term>,
        rebuild: impl Fn(&Term, &Term, &Term) -> (Term, Term, Term),
    ) -> Vec<Triple> {
        let mut out = Vec::new();
        let Some(level2) = index.get(k1) else {
            return out;
        };
        let push = |out: &mut Vec<Triple>, a: &Term, b: &Term, c: &Term| {
            let (s, p, o) = rebuild(a, b, c);
            let Term::Iri(p) = p else {
                unreachable!("predicate index holds only IRIs")
            };
            out.push(Triple::new(s, p, o));
        };
        match k2 {
            Some(k2) => {
                if let Some(level3) = level2.get(k2) {
                    match k3 {
                        Some(k3) => {
                            if level3.contains(k3) {
                                push(&mut out, k1, k2, k3);
                            }
                        }
                        None => {
                            for c in level3 {
                                push(&mut out, k1, k2, c);
                            }
                        }
                    }
                }
            }
            None => {
                for (b, level3) in level2 {
                    match k3 {
                        Some(k3) => {
                            if level3.contains(k3) {
                                push(&mut out, k1, b, k3);
                            }
                        }
                        None => {
                            for c in level3 {
                                push(&mut out, k1, b, c);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn insert_into(index: &mut Index, a: &Term, b: &Term, c: &Term) -> bool {
    index
        .entry(a.clone())
        .or_default()
        .entry(b.clone())
        .or_default()
        .insert(c.clone())
}

fn remove_from(index: &mut Index, a: &Term, b: &Term, c: &Term) -> bool {
    let Some(level2) = index.get_mut(a) else {
        return false;
    };
    let Some(level3) = level2.get_mut(b) else {
        return false;
    };
    let removed = level3.remove(c);
    if level3.is_empty() {
        level2.remove(b);
        if level2.is_empty() {
            index.remove(a);
        }
    }
    removed
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        for t in iter {
            g.insert(t);
        }
        g
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use crate::namespace::{foaf, ont, rdf_type};

    fn author(n: u32) -> Term {
        Term::iri(&format!("http://example.org/db/author{n}"))
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::new(
            author(6),
            rdf_type(),
            Term::Iri(foaf::Person()),
        ));
        g.insert(Triple::new(
            author(6),
            foaf::firstName(),
            Literal::plain("Matthias"),
        ));
        g.insert(Triple::new(
            author(6),
            foaf::family_name(),
            Literal::plain("Hert"),
        ));
        g.insert(Triple::new(
            author(7),
            rdf_type(),
            Term::Iri(foaf::Person()),
        ));
        g.insert(Triple::new(
            author(7),
            ont::team(),
            Term::iri("http://example.org/db/team5"),
        ));
        g
    }

    #[test]
    fn insert_dedup() {
        let mut g = Graph::new();
        let t = Triple::new(author(1), rdf_type(), Term::Iri(foaf::Person()));
        assert!(g.insert(t.clone()));
        assert!(!g.insert(t));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = sample();
        let t = Triple::new(author(6), foaf::firstName(), Literal::plain("Matthias"));
        assert!(g.remove(&t));
        assert!(!g.remove(&t));
        assert!(!g.contains(&t));
        assert_eq!(g.len(), 4);
        assert!(g.matching(None, Some(&foaf::firstName()), None).is_empty());
        assert!(g
            .matching(None, None, Some(&Term::plain("Matthias")))
            .is_empty());
    }

    #[test]
    fn match_by_subject() {
        let g = sample();
        assert_eq!(g.triples_for_subject(&author(6)).len(), 3);
        assert_eq!(g.triples_for_subject(&author(99)).len(), 0);
    }

    #[test]
    fn match_by_predicate() {
        let g = sample();
        let typed = g.matching(None, Some(&rdf_type()), None);
        assert_eq!(typed.len(), 2);
        assert!(typed.iter().all(|t| t.predicate == rdf_type()));
    }

    #[test]
    fn match_by_object() {
        let g = sample();
        let persons = g.matching(None, None, Some(&Term::Iri(foaf::Person())));
        assert_eq!(persons.len(), 2);
    }

    #[test]
    fn match_fully_bound() {
        let g = sample();
        let t = Triple::new(author(6), foaf::family_name(), Literal::plain("Hert"));
        assert_eq!(
            g.matching(Some(&t.subject), Some(&t.predicate), Some(&t.object)),
            vec![t]
        );
    }

    #[test]
    fn match_sp_wildcard_o() {
        let g = sample();
        let res = g.matching(Some(&author(6)), Some(&rdf_type()), None);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].object, Term::Iri(foaf::Person()));
    }

    #[test]
    fn match_po_via_pos_index() {
        let g = sample();
        let res = g.matching(None, Some(&rdf_type()), Some(&Term::Iri(foaf::Person())));
        assert_eq!(res.len(), 2);
        assert!(res.iter().any(|t| t.subject == author(6)));
        assert!(res.iter().any(|t| t.subject == author(7)));
    }

    #[test]
    fn match_so_wildcard_p() {
        let g = sample();
        let res = g.matching(Some(&author(6)), None, Some(&Term::plain("Hert")));
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].predicate, foaf::family_name());
    }

    #[test]
    fn objects_accessor() {
        let g = sample();
        assert_eq!(
            g.object(&author(6), &foaf::firstName()),
            Some(Term::plain("Matthias"))
        );
        assert_eq!(g.object(&author(6), &foaf::mbox()), None);
    }

    #[test]
    fn subjects_with_accessor() {
        let g = sample();
        let subs = g.subjects_with(&rdf_type(), &Term::Iri(foaf::Person()));
        assert_eq!(subs.len(), 2);
    }

    #[test]
    fn iteration_is_deterministic() {
        let g = sample();
        let a: Vec<_> = g.iter().collect();
        let b: Vec<_> = g.iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), g.len());
    }

    #[test]
    fn from_iterator_and_eq() {
        let g = sample();
        let g2: Graph = g.iter().collect();
        assert_eq!(g, g2);
    }

    #[test]
    fn clear_empties_everything() {
        let mut g = sample();
        g.clear();
        assert!(g.is_empty());
        assert!(g.matching(None, None, None).is_empty());
    }
}
