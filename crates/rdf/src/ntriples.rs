//! N-Triples parser and serializer (line-based exchange format, used for
//! graph dumps and golden-file tests).

use crate::graph::Graph;
use crate::iri::Iri;
use crate::literal::Literal;
use crate::term::{BlankNode, Term};
use crate::triple::Triple;
use std::fmt;

/// N-Triples parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

impl fmt::Display for NtParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ntriples:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for NtParseError {}

/// Serialize a graph as N-Triples (one triple per line, deterministic
/// order).
pub fn write(graph: &Graph) -> String {
    let mut out = String::new();
    for triple in graph.iter() {
        out.push_str(&triple.to_string());
        out.push('\n');
    }
    out
}

/// Parse an N-Triples document.
pub fn parse(input: &str) -> Result<Graph, NtParseError> {
    let mut graph = Graph::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let triple = parse_line(trimmed).map_err(|message| NtParseError {
            message,
            line: line_no,
        })?;
        graph.insert(triple);
    }
    Ok(graph)
}

fn parse_line(line: &str) -> Result<Triple, String> {
    let mut rest = line;
    let subject = take_term(&mut rest)?;
    if subject.is_literal() {
        return Err("literal in subject position".into());
    }
    let predicate = match take_term(&mut rest)? {
        Term::Iri(iri) => iri,
        other => return Err(format!("predicate must be an IRI, found {other}")),
    };
    let object = take_term(&mut rest)?;
    let rest = rest.trim_start();
    if rest != "." {
        return Err(format!("expected terminating '.', found {rest:?}"));
    }
    Ok(Triple::new(subject, predicate, object))
}

fn take_term(rest: &mut &str) -> Result<Term, String> {
    *rest = rest.trim_start();
    let bytes = rest.as_bytes();
    match bytes.first() {
        Some(b'<') => {
            let end = rest.find('>').ok_or("unterminated IRI")?;
            let iri = Iri::parse(&rest[1..end]).map_err(|e| e.to_string())?;
            *rest = &rest[end + 1..];
            Ok(Term::Iri(iri))
        }
        Some(b'_') => {
            if !rest.starts_with("_:") {
                return Err("expected '_:'".into());
            }
            let body = &rest[2..];
            let end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
            let label = &body[..end];
            if label.is_empty() {
                return Err("empty blank node label".into());
            }
            *rest = &body[end..];
            Ok(Term::Blank(BlankNode::new(label)))
        }
        Some(b'"') => {
            let (lexical, after) = take_quoted(&rest[1..])?;
            *rest = after;
            if let Some(stripped) = rest.strip_prefix("^^") {
                let stripped = stripped.trim_start();
                if !stripped.starts_with('<') {
                    return Err("datatype must be an IRI".into());
                }
                let end = stripped.find('>').ok_or("unterminated datatype IRI")?;
                let dt = Iri::parse(&stripped[1..end]).map_err(|e| e.to_string())?;
                *rest = &stripped[end + 1..];
                Ok(Term::Literal(Literal::typed(lexical, dt)))
            } else if let Some(stripped) = rest.strip_prefix('@') {
                let end = stripped
                    .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                    .unwrap_or(stripped.len());
                let tag = &stripped[..end];
                if tag.is_empty() {
                    return Err("empty language tag".into());
                }
                *rest = &stripped[end..];
                Ok(Term::Literal(Literal::lang(lexical, tag)))
            } else {
                Ok(Term::Literal(Literal::plain(lexical)))
            }
        }
        Some(_) | None => Err(format!("expected term, found {rest:?}")),
    }
}

// Read a quoted string body (after the opening quote); returns the
// unescaped content and the remainder after the closing quote.
fn take_quoted(s: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) | Some((_, 'U')) => {
                    let need = if s.as_bytes()[i + 1] == b'u' { 4 } else { 8 };
                    let mut hex = String::new();
                    for _ in 0..need {
                        match chars.next() {
                            Some((_, h)) if h.is_ascii_hexdigit() => hex.push(h),
                            _ => return Err("invalid unicode escape".into()),
                        }
                    }
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|_| "invalid unicode escape")?;
                    out.push(char::from_u32(code).ok_or("unicode escape out of range")?);
                }
                _ => return Err("unknown escape".into()),
            },
            _ => out.push(c),
        }
    }
    Err("unterminated string literal".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::{foaf, rdf_type};

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://example.org/db/author6"),
            rdf_type(),
            Term::Iri(foaf::Person()),
        ));
        g.insert(Triple::new(
            Term::iri("http://example.org/db/author6"),
            foaf::family_name(),
            Literal::plain("Hert"),
        ));
        g.insert(Triple::new(
            Term::blank("b0"),
            foaf::name(),
            Literal::lang("Zürich \"crew\"", "de"),
        ));
        g.insert(Triple::new(
            Term::iri("http://example.org/db/pub12"),
            Iri::parse("http://example.org/ontology#pubYear").unwrap(),
            Literal::integer(2009),
        ));
        g
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let text = write(&g);
        assert_eq!(parse(&text).unwrap(), g);
    }

    #[test]
    fn one_triple_per_line() {
        let text = write(&sample());
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().all(|l| l.ends_with(" .")));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let g =
            parse("# comment\n\n<http://e.org/s> <http://e.org/p> <http://e.org/o> .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn rejects_literal_subject() {
        assert!(parse("\"x\" <http://e.org/p> <http://e.org/o> .").is_err());
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse("<http://e.org/s> <http://e.org/p> <http://e.org/o>").is_err());
    }

    #[test]
    fn rejects_literal_predicate() {
        assert!(parse("<http://e.org/s> \"p\" <http://e.org/o> .").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("<http://e.org/s> <http://e.org/p> <http://e.org/o> .\nbogus line\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn typed_literal_round_trip() {
        let input = "<http://e.org/s> <http://e.org/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        let g = parse(input).unwrap();
        assert_eq!(write(&g), input);
    }
}
