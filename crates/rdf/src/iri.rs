//! IRI (Internationalized Resource Identifier) type.
//!
//! OntoAccess uses IRIs in three roles: ontology terms (classes and
//! properties), instance identifiers generated from R3M URI patterns, and
//! datatype IRIs on literals. We validate the small set of syntactic
//! properties the translation algorithms rely on (non-empty, no whitespace
//! or angle brackets, a scheme separator) rather than full RFC 3987.

use std::borrow::Borrow;
use std::fmt;

/// An absolute IRI.
///
/// Stored as the raw string without surrounding angle brackets.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(String);

/// Error produced when a string is not usable as an IRI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IriParseError {
    /// The offending input (possibly truncated).
    pub input: String,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for IriParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IRI {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for IriParseError {}

impl Iri {
    /// Parse a string into an [`Iri`], checking the invariants the rest of
    /// the system depends on.
    ///
    /// Accepted IRIs are non-empty, contain no whitespace, `<`, `>`, or
    /// `"`, and contain a `:` (scheme separator). This deliberately admits
    /// `mailto:` and `urn:` style IRIs which the paper's use case relies on
    /// (e.g. `mailto:hert@ifi.uzh.ch` in Listing 9).
    pub fn parse(s: impl Into<String>) -> Result<Self, IriParseError> {
        let s = s.into();
        let err = |reason| IriParseError {
            input: truncate(&s),
            reason,
        };
        if s.is_empty() {
            return Err(err("empty string"));
        }
        if s.chars()
            .any(|c| c.is_whitespace() || matches!(c, '<' | '>' | '"' | '{' | '}' | '|' | '\\'))
        {
            return Err(err("contains whitespace or a forbidden character"));
        }
        if !s.contains(':') {
            return Err(err("missing scheme separator ':'"));
        }
        Ok(Iri(s))
    }

    /// Construct an IRI that is statically known to be valid (vocabulary
    /// constants). Panics on invalid input; use [`Iri::parse`] for data.
    pub fn new_unchecked(s: impl Into<String>) -> Self {
        let s = s.into();
        debug_assert!(
            Iri::parse(s.clone()).is_ok(),
            "new_unchecked called with invalid IRI {s:?}"
        );
        Iri(s)
    }

    /// The IRI as a string slice (no angle brackets).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Consume and return the inner string.
    pub fn into_string(self) -> String {
        self.0
    }

    /// Whether this IRI starts with the given prefix — used when matching
    /// instance IRIs against R3M URI patterns.
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.0.starts_with(prefix)
    }

    /// Local name heuristic: the part after the last `#`, `/`, or `:`.
    /// Used only for human-readable output (feedback documents, tables).
    pub fn local_name(&self) -> &str {
        let s = &self.0;
        let idx = s.rfind(['#', '/']).or_else(|| s.rfind(':'));
        match idx {
            Some(i) if i + 1 < s.len() => &s[i + 1..],
            _ => s,
        }
    }
}

fn truncate(s: &str) -> String {
    const MAX: usize = 64;
    if s.len() <= MAX {
        s.to_owned()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl AsRef<str> for Iri {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Iri {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for Iri {
    type Err = IriParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Iri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_http_iri() {
        let iri = Iri::parse("http://example.org/db/author1").unwrap();
        assert_eq!(iri.as_str(), "http://example.org/db/author1");
    }

    #[test]
    fn parses_mailto_iri() {
        // The paper's Listing 9 uses mailto: IRIs as objects.
        let iri = Iri::parse("mailto:hert@ifi.uzh.ch").unwrap();
        assert_eq!(iri.local_name(), "hert@ifi.uzh.ch");
    }

    #[test]
    fn rejects_empty() {
        assert!(Iri::parse("").is_err());
    }

    #[test]
    fn rejects_whitespace() {
        assert!(Iri::parse("http://example.org/a b").is_err());
    }

    #[test]
    fn rejects_angle_brackets() {
        assert!(Iri::parse("http://example.org/<x>").is_err());
    }

    #[test]
    fn rejects_missing_scheme() {
        assert!(Iri::parse("no-scheme-here").is_err());
    }

    #[test]
    fn local_name_hash() {
        let iri = Iri::parse("http://example.org/ontology#teamCode").unwrap();
        assert_eq!(iri.local_name(), "teamCode");
    }

    #[test]
    fn local_name_slash() {
        let iri = Iri::parse("http://purl.org/dc/elements/1.1/creator").unwrap();
        assert_eq!(iri.local_name(), "creator");
    }

    #[test]
    fn display_wraps_in_angle_brackets() {
        let iri = Iri::parse("http://example.org/x").unwrap();
        assert_eq!(iri.to_string(), "<http://example.org/x>");
    }

    #[test]
    fn error_truncates_long_input() {
        let long = format!("http://example.org/{}", "a".repeat(200));
        let long_with_space = format!("{long} x");
        let err = Iri::parse(long_with_space).unwrap_err();
        assert!(err.input.len() < 80);
    }
}
