//! Tokenizer for the Turtle subset used by R3M mapping documents and the
//! fixtures (prefixed names, IRIs, literals, `;`/`,` predicate-object
//! lists, blank node property lists `[ ... ]`, and `a`).

use std::fmt;

/// A Turtle token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub column: usize,
}

/// Token kinds for the Turtle subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `<...>`: IRI reference (content without brackets).
    IriRef(String),
    /// `prefix:local` (either part may be empty).
    PrefixedName {
        /// Namespace prefix (before the colon).
        prefix: String,
        /// Local part (after the colon).
        local: String,
    },
    /// `_:label`.
    BlankNodeLabel(String),
    /// String literal content (unescaped).
    StringLiteral(String),
    /// `@lang` tag or the `@prefix`/`@base` directives.
    AtWord(String),
    /// Bare integer (e.g. `42`).
    Integer(i64),
    /// Bare decimal/double (kept lexical).
    Decimal(String),
    /// Bare `true`/`false`.
    Boolean(bool),
    /// The keyword `a`.
    A,
    /// `^^` datatype marker.
    DatatypeMarker,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::IriRef(iri) => write!(f, "<{iri}>"),
            TokenKind::PrefixedName { prefix, local } => write!(f, "{prefix}:{local}"),
            TokenKind::BlankNodeLabel(l) => write!(f, "_:{l}"),
            TokenKind::StringLiteral(s) => write!(f, "\"{s}\""),
            TokenKind::AtWord(w) => write!(f, "@{w}"),
            TokenKind::Integer(i) => write!(f, "{i}"),
            TokenKind::Decimal(d) => write!(f, "{d}"),
            TokenKind::Boolean(b) => write!(f, "{b}"),
            TokenKind::A => write!(f, "a"),
            TokenKind::DatatypeMarker => write!(f, "^^"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexer error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer over a Turtle document.
pub struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    /// Tokenize the whole input (trailing `Eof` token included).
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let eof = token.kind == TokenKind::Eof;
            tokens.push(token);
            if eof {
                return Ok(tokens);
            }
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia();
        let line = self.line;
        let column = self.column;
        let token = |kind| Token { kind, line, column };
        let Some(c) = self.peek() else {
            return Ok(token(TokenKind::Eof));
        };
        match c {
            '<' => {
                self.bump();
                let mut iri = String::new();
                loop {
                    match self.bump() {
                        Some('>') => break,
                        Some(c) if c.is_whitespace() => {
                            return Err(self.error("whitespace inside IRI reference"))
                        }
                        Some(c) => iri.push(c),
                        None => return Err(self.error("unterminated IRI reference")),
                    }
                }
                Ok(token(TokenKind::IriRef(iri)))
            }
            '"' => {
                self.bump();
                let s = self.read_string()?;
                Ok(token(TokenKind::StringLiteral(s)))
            }
            '@' => {
                self.bump();
                let mut word = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '-' {
                        word.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if word.is_empty() {
                    return Err(self.error("'@' not followed by a word"));
                }
                Ok(token(TokenKind::AtWord(word)))
            }
            '^' => {
                self.bump();
                if self.peek() == Some('^') {
                    self.bump();
                    Ok(token(TokenKind::DatatypeMarker))
                } else {
                    Err(self.error("single '^' (expected '^^')"))
                }
            }
            '.' => {
                self.bump();
                Ok(token(TokenKind::Dot))
            }
            ';' => {
                self.bump();
                Ok(token(TokenKind::Semicolon))
            }
            ',' => {
                self.bump();
                Ok(token(TokenKind::Comma))
            }
            '[' => {
                self.bump();
                Ok(token(TokenKind::LBracket))
            }
            ']' => {
                self.bump();
                Ok(token(TokenKind::RBracket))
            }
            '(' => {
                self.bump();
                Ok(token(TokenKind::LParen))
            }
            ')' => {
                self.bump();
                Ok(token(TokenKind::RParen))
            }
            '_' => {
                self.bump();
                if self.bump() != Some(':') {
                    return Err(self.error("'_' not followed by ':' (blank node label)"));
                }
                let label = self.read_name();
                if label.is_empty() {
                    return Err(self.error("empty blank node label"));
                }
                Ok(token(TokenKind::BlankNodeLabel(label)))
            }
            c if c == '+' || c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                if c == '+' || c == '-' {
                    num.push(c);
                    self.bump();
                }
                let mut is_decimal = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        num.push(c);
                        self.bump();
                    } else if (c == '.' || c == 'e' || c == 'E')
                        && !is_decimal_terminator(&mut self.chars.clone(), c)
                    {
                        is_decimal = true;
                        num.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if is_decimal {
                    Ok(token(TokenKind::Decimal(num)))
                } else {
                    let value: i64 = num
                        .parse()
                        .map_err(|_| self.error(format!("invalid integer {num:?}")))?;
                    Ok(token(TokenKind::Integer(value)))
                }
            }
            c if is_name_start(c) || c == ':' => {
                let first = self.read_name();
                if self.peek() == Some(':') {
                    self.bump();
                    let local = self.read_name();
                    Ok(token(TokenKind::PrefixedName {
                        prefix: first,
                        local,
                    }))
                } else {
                    match first.as_str() {
                        "a" => Ok(token(TokenKind::A)),
                        "true" => Ok(token(TokenKind::Boolean(true))),
                        "false" => Ok(token(TokenKind::Boolean(false))),
                        other => Err(self.error(format!("unexpected bare word {other:?}"))),
                    }
                }
            }
            other => Err(self.error(format!("unexpected character {other:?}"))),
        }
    }

    fn read_string(&mut self) -> Result<String, LexError> {
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => out.push(self.read_unicode_escape(4)?),
                    Some('U') => out.push(self.read_unicode_escape(8)?),
                    Some(other) => return Err(self.error(format!("unknown escape '\\{other}'"))),
                    None => return Err(self.error("unterminated escape")),
                },
                Some('\n') => return Err(self.error("newline in single-line string")),
                Some(c) => out.push(c),
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    fn read_unicode_escape(&mut self, len: usize) -> Result<char, LexError> {
        let mut hex = String::with_capacity(len);
        for _ in 0..len {
            match self.bump() {
                Some(c) if c.is_ascii_hexdigit() => hex.push(c),
                _ => return Err(self.error("invalid unicode escape")),
            }
        }
        let code = u32::from_str_radix(&hex, 16).expect("hex digits verified");
        char::from_u32(code).ok_or_else(|| self.error("unicode escape out of range"))
    }

    fn read_name(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if is_name_char(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

// A '.' terminates a number if not followed by a digit (it is then the
// statement terminator).
fn is_decimal_terminator(
    lookahead: &mut std::iter::Peekable<std::str::Chars<'_>>,
    c: char,
) -> bool {
    if c != '.' {
        return false;
    }
    lookahead.next();
    !lookahead.peek().is_some_and(|n| n.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        Lexer::new(input)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn iri_ref() {
        assert_eq!(
            kinds("<http://example.org/x>"),
            vec![
                TokenKind::IriRef("http://example.org/x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn prefixed_name_and_a() {
        assert_eq!(
            kinds("map:author a r3m:TableMap ."),
            vec![
                TokenKind::PrefixedName {
                    prefix: "map".into(),
                    local: "author".into()
                },
                TokenKind::A,
                TokenKind::PrefixedName {
                    prefix: "r3m".into(),
                    local: "TableMap".into()
                },
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b\nc""#),
            vec![TokenKind::StringLiteral("a\"b\nc".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(
            kinds(r#""é""#),
            vec![TokenKind::StringLiteral("é".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn at_directives_and_lang() {
        assert_eq!(
            kinds("@prefix @base \"x\"@en"),
            vec![
                TokenKind::AtWord("prefix".into()),
                TokenKind::AtWord("base".into()),
                TokenKind::StringLiteral("x".into()),
                TokenKind::AtWord("en".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 -7 3.14"),
            vec![
                TokenKind::Integer(42),
                TokenKind::Integer(-7),
                TokenKind::Decimal("3.14".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn integer_followed_by_dot_terminator() {
        // `5 .` — the dot is a statement terminator, not a decimal point.
        assert_eq!(
            kinds("ont:pubYear 5 ."),
            vec![
                TokenKind::PrefixedName {
                    prefix: "ont".into(),
                    local: "pubYear".into()
                },
                TokenKind::Integer(5),
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# a comment\n42 # trailing\n"),
            vec![TokenKind::Integer(42), TokenKind::Eof]
        );
    }

    #[test]
    fn blank_node_label() {
        assert_eq!(
            kinds("_:b0"),
            vec![TokenKind::BlankNodeLabel("b0".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn datatype_marker() {
        assert_eq!(
            kinds("\"5\"^^xsd:int"),
            vec![
                TokenKind::StringLiteral("5".into()),
                TokenKind::DatatypeMarker,
                TokenKind::PrefixedName {
                    prefix: "xsd".into(),
                    local: "int".into()
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn brackets() {
        assert_eq!(
            kinds("[ ] ( )"),
            vec![
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = Lexer::new("\n  %").tokenize().unwrap_err();
        assert_eq!((err.line, err.column), (2, 3));
    }

    #[test]
    fn unterminated_iri_is_error() {
        assert!(Lexer::new("<http://x.org/").tokenize().is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }
}
