//! Recursive-descent parser for the Turtle subset used throughout the
//! reproduction (R3M mapping documents such as the paper's Listings 1-5,
//! fixture data, and feedback documents).
//!
//! Supported grammar: `@prefix`/`@base` directives, subject
//! predicate-object lists with `;` and `,`, the `a` keyword, IRI
//! references, prefixed names, blank node labels, anonymous blank node
//! property lists `[ ... ]` (the paper's constraint syntax, Listing 3),
//! string literals with language tags and datatypes, and bare
//! integer/decimal/boolean abbreviations.

use crate::graph::Graph;
use crate::iri::Iri;
use crate::literal::Literal;
use crate::namespace::{rdf_type, xsd, PrefixMap};
use crate::term::{BlankNode, Term};
use crate::triple::Triple;
use crate::turtle::lexer::{LexError, Lexer, Token, TokenKind};
use std::fmt;

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "turtle:{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            column: e.column,
        }
    }
}

/// Parse a Turtle document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, ParseError> {
    parse_with_prefixes(input, PrefixMap::new()).map(|(g, _)| g)
}

/// Parse a Turtle document, starting from the given prefix map (callers
/// commonly pass [`PrefixMap::common`]), returning the graph and the
/// final prefix map (including `@prefix` declarations from the document).
pub fn parse_with_prefixes(
    input: &str,
    prefixes: PrefixMap,
) -> Result<(Graph, PrefixMap), ParseError> {
    let tokens = Lexer::new(input).tokenize()?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes,
        base: None,
        graph: Graph::new(),
        blank_counter: 0,
    };
    parser.parse_document()?;
    Ok((parser.graph, parser.prefixes))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: PrefixMap,
    base: Option<String>,
    graph: Graph,
    blank_counter: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn error_at(&self, line: usize, column: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        let token = self.bump();
        if &token.kind == kind {
            Ok(())
        } else {
            Err(self.error_at(
                token.line,
                token.column,
                format!("expected {kind}, found {}", token.kind),
            ))
        }
    }

    fn parse_document(&mut self) -> Result<(), ParseError> {
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return Ok(()),
                TokenKind::AtWord(w) if w == "prefix" => self.parse_prefix_directive()?,
                TokenKind::AtWord(w) if w == "base" => self.parse_base_directive()?,
                _ => self.parse_statement()?,
            }
        }
    }

    fn parse_prefix_directive(&mut self) -> Result<(), ParseError> {
        self.bump(); // @prefix
        let token = self.bump();
        let (line, column) = (token.line, token.column);
        let prefix = match token.kind {
            TokenKind::PrefixedName { prefix, local } if local.is_empty() => prefix,
            other => {
                return Err(self.error_at(
                    line,
                    column,
                    format!("expected prefix declaration name, found {other}"),
                ))
            }
        };
        let ns_token = self.bump();
        let (ns_line, ns_column) = (ns_token.line, ns_token.column);
        let ns = match ns_token.kind {
            TokenKind::IriRef(iri) => self.resolve_iri_ref(&iri, ns_line, ns_column)?,
            other => {
                return Err(self.error_at(
                    ns_line,
                    ns_column,
                    format!("expected IRI, found {other}"),
                ))
            }
        };
        self.expect(&TokenKind::Dot)?;
        self.prefixes.insert(prefix, ns.into_string());
        Ok(())
    }

    fn parse_base_directive(&mut self) -> Result<(), ParseError> {
        self.bump(); // @base
        let token = self.bump();
        let (line, column) = (token.line, token.column);
        match token.kind {
            TokenKind::IriRef(iri) => self.base = Some(iri),
            other => {
                return Err(self.error_at(line, column, format!("expected IRI, found {other}")))
            }
        }
        self.expect(&TokenKind::Dot)
    }

    fn parse_statement(&mut self) -> Result<(), ParseError> {
        let subject = self.parse_subject()?;
        self.parse_predicate_object_list(&subject)?;
        self.expect(&TokenKind::Dot)
    }

    fn parse_subject(&mut self) -> Result<Term, ParseError> {
        let token = self.bump();
        let (line, column) = (token.line, token.column);
        match token.kind {
            TokenKind::IriRef(iri) => Ok(Term::Iri(self.resolve_iri_ref(&iri, line, column)?)),
            TokenKind::PrefixedName { prefix, local } => Ok(Term::Iri(
                self.resolve_prefixed(&prefix, &local, line, column)?,
            )),
            TokenKind::BlankNodeLabel(label) => Ok(Term::Blank(BlankNode::new(label))),
            TokenKind::LBracket => {
                let node = self.fresh_blank();
                self.parse_property_list_body(&node)?;
                Ok(node)
            }
            other => Err(self.error_at(line, column, format!("expected subject, found {other}"))),
        }
    }

    fn parse_predicate_object_list(&mut self, subject: &Term) -> Result<(), ParseError> {
        loop {
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object()?;
                self.graph
                    .insert(Triple::new(subject.clone(), predicate.clone(), object));
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            if self.peek().kind == TokenKind::Semicolon {
                self.bump();
                // Trailing semicolons before '.' or ']' are legal Turtle.
                if matches!(self.peek().kind, TokenKind::Dot | TokenKind::RBracket) {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Iri, ParseError> {
        let token = self.bump();
        let (line, column) = (token.line, token.column);
        match token.kind {
            TokenKind::A => Ok(rdf_type()),
            TokenKind::IriRef(iri) => self.resolve_iri_ref(&iri, line, column),
            TokenKind::PrefixedName { prefix, local } => {
                self.resolve_prefixed(&prefix, &local, line, column)
            }
            other => Err(self.error_at(line, column, format!("expected predicate, found {other}"))),
        }
    }

    fn parse_object(&mut self) -> Result<Term, ParseError> {
        let token = self.bump();
        let (line, column) = (token.line, token.column);
        match token.kind {
            TokenKind::IriRef(iri) => Ok(Term::Iri(self.resolve_iri_ref(&iri, line, column)?)),
            TokenKind::PrefixedName { prefix, local } => Ok(Term::Iri(
                self.resolve_prefixed(&prefix, &local, line, column)?,
            )),
            TokenKind::BlankNodeLabel(label) => Ok(Term::Blank(BlankNode::new(label))),
            TokenKind::LBracket => {
                let node = self.fresh_blank();
                self.parse_property_list_body(&node)?;
                Ok(node)
            }
            TokenKind::StringLiteral(s) => self.parse_literal_suffix(s),
            TokenKind::Integer(i) => Ok(Term::Literal(Literal::integer(i))),
            TokenKind::Decimal(d) => Ok(Term::Literal(Literal::typed(d, xsd::decimal()))),
            TokenKind::Boolean(b) => Ok(Term::Literal(Literal::boolean(b))),
            other => Err(self.error_at(line, column, format!("expected object, found {other}"))),
        }
    }

    // `[ p1 o1 ; p2 o2 ]` — body after the '['.
    fn parse_property_list_body(&mut self, node: &Term) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::RBracket {
            self.bump();
            return Ok(());
        }
        self.parse_predicate_object_list(node)?;
        self.expect(&TokenKind::RBracket)
    }

    fn parse_literal_suffix(&mut self, lexical: String) -> Result<Term, ParseError> {
        match &self.peek().kind {
            TokenKind::AtWord(tag) => {
                let tag = tag.clone();
                self.bump();
                Ok(Term::Literal(Literal::lang(lexical, tag)))
            }
            TokenKind::DatatypeMarker => {
                self.bump();
                let token = self.bump();
                let (line, column) = (token.line, token.column);
                let dt = match token.kind {
                    TokenKind::IriRef(iri) => self.resolve_iri_ref(&iri, line, column)?,
                    TokenKind::PrefixedName { prefix, local } => {
                        self.resolve_prefixed(&prefix, &local, line, column)?
                    }
                    other => {
                        return Err(self.error_at(
                            line,
                            column,
                            format!("expected datatype IRI, found {other}"),
                        ))
                    }
                };
                Ok(Term::Literal(Literal::typed(lexical, dt)))
            }
            _ => Ok(Term::Literal(Literal::plain(lexical))),
        }
    }

    fn resolve_iri_ref(&self, iri: &str, line: usize, column: usize) -> Result<Iri, ParseError> {
        let full = if iri.contains(':') {
            iri.to_owned()
        } else if let Some(base) = &self.base {
            format!("{base}{iri}")
        } else {
            iri.to_owned()
        };
        Iri::parse(full).map_err(|e| self.error_at(line, column, e.to_string()))
    }

    fn resolve_prefixed(
        &self,
        prefix: &str,
        local: &str,
        line: usize,
        column: usize,
    ) -> Result<Iri, ParseError> {
        self.prefixes
            .resolve(prefix, local)
            .ok_or_else(|| self.error_at(line, column, format!("undeclared prefix {prefix:?}")))
    }

    fn fresh_blank(&mut self) -> Term {
        self.blank_counter += 1;
        Term::Blank(BlankNode::new(format!("anon{}", self.blank_counter)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::{foaf, ont, r3m};

    #[test]
    fn simple_statement() {
        let g = parse(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
             <http://example.org/db/author6> foaf:family_name \"Hert\" .",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.contains(&Triple::new(
            Term::iri("http://example.org/db/author6"),
            foaf::family_name(),
            Literal::plain("Hert"),
        )));
    }

    #[test]
    fn predicate_object_lists() {
        // Shape of the paper's Listing 9.
        let g = parse(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
             @prefix ont: <http://example.org/ontology#> .\n\
             @prefix ex: <http://example.org/db/> .\n\
             ex:author6 foaf:title \"Mr\" ;\n\
                foaf:firstName \"Matthias\" ;\n\
                foaf:family_name \"Hert\" ;\n\
                foaf:mbox <mailto:hert@ifi.uzh.ch> ;\n\
                ont:team ex:team5 .",
        )
        .unwrap();
        assert_eq!(g.len(), 5);
        let subject = Term::iri("http://example.org/db/author6");
        assert_eq!(g.triples_for_subject(&subject).len(), 5);
        assert_eq!(
            g.object(&subject, &ont::team()),
            Some(Term::iri("http://example.org/db/team5"))
        );
    }

    #[test]
    fn object_lists_with_comma() {
        let g = parse(
            "@prefix r3m: <http://ontoaccess.org/r3m#> .\n\
             @prefix map: <http://example.org/map#> .\n\
             map:database r3m:hasTable map:author , map:team , map:publisher .",
        )
        .unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn a_keyword_is_rdf_type() {
        let g = parse(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
             <http://example.org/db/author1> a foaf:Person .",
        )
        .unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.predicate, rdf_type());
    }

    #[test]
    fn anonymous_blank_node_constraint_syntax() {
        // The paper's Listing 3: hasConstraint [ a r3m:ForeignKey ; ... ].
        let g = parse(
            "@prefix r3m: <http://ontoaccess.org/r3m#> .\n\
             @prefix map: <http://example.org/map#> .\n\
             map:author_team a r3m:AttributeMap ;\n\
               r3m:hasAttributeName \"team\" ;\n\
               r3m:hasConstraint [ a r3m:ForeignKey ; r3m:references map:team ] .",
        )
        .unwrap();
        assert_eq!(g.len(), 5);
        let attr = Term::iri("http://example.org/map#author_team");
        let constraint = g.object(&attr, &r3m::hasConstraint()).unwrap();
        assert!(constraint.as_blank().is_some());
        assert_eq!(
            g.object(&constraint, &rdf_type()),
            Some(Term::Iri(r3m::ForeignKey()))
        );
        assert_eq!(
            g.object(&constraint, &r3m::references()),
            Some(Term::iri("http://example.org/map#team"))
        );
    }

    #[test]
    fn typed_and_lang_literals() {
        let g = parse(
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             @prefix ex: <http://example.org/> .\n\
             ex:s ex:p \"2009\"^^xsd:integer , \"hi\"@en , 42 , 3.5 , true .",
        )
        .unwrap();
        assert_eq!(g.len(), 5);
        let s = Term::iri("http://example.org/s");
        let p = Iri::parse("http://example.org/p").unwrap();
        let objects = g.objects(&s, &p);
        assert!(objects.contains(&Term::Literal(Literal::typed("2009", xsd::integer()))));
        assert!(objects.contains(&Term::Literal(Literal::lang("hi", "en"))));
        assert!(objects.contains(&Term::Literal(Literal::integer(42))));
        assert!(objects.contains(&Term::Literal(Literal::boolean(true))));
    }

    #[test]
    fn trailing_semicolon_before_dot() {
        let g = parse(
            "@prefix ex: <http://example.org/> .\n\
             ex:s ex:p ex:o ; .",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn base_resolution() {
        let g = parse(
            "@base <http://example.org/db/> .\n\
             <author1> <http://example.org/p> <team2> .",
        )
        .unwrap();
        let t = g.iter().next().unwrap();
        assert_eq!(t.subject, Term::iri("http://example.org/db/author1"));
        assert_eq!(t.object, Term::iri("http://example.org/db/team2"));
    }

    #[test]
    fn undeclared_prefix_is_error() {
        let err = parse("nope:s nope:p nope:o .").unwrap_err();
        assert!(err.message.contains("undeclared prefix"));
    }

    #[test]
    fn missing_dot_is_error() {
        assert!(parse("<http://e.org/s> <http://e.org/p> <http://e.org/o>").is_err());
    }

    #[test]
    fn common_prefixes_preloaded() {
        let (g, _) = parse_with_prefixes(
            "<http://example.org/db/author1> a foaf:Person .",
            PrefixMap::common(),
        )
        .unwrap();
        assert_eq!(
            g.object(&Term::iri("http://example.org/db/author1"), &rdf_type()),
            Some(Term::Iri(foaf::Person()))
        );
    }

    #[test]
    fn blank_subject_property_list() {
        let g = parse(
            "@prefix ex: <http://example.org/> .\n\
             [ ex:p ex:o ] ex:q ex:r .",
        )
        .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn empty_document() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("# only a comment\n").unwrap().is_empty());
    }
}
