//! Turtle serializer.
//!
//! Produces the compact style the paper's listings use: `@prefix` header,
//! one subject block per paragraph, `;`-separated predicate-object lists,
//! and `,`-separated object lists.

use crate::graph::Graph;
use crate::iri::Iri;
use crate::literal::{Literal, LiteralKind};
use crate::namespace::{rdf_type, PrefixMap};
use crate::term::Term;
use std::fmt::Write as _;

/// Serialize `graph` as Turtle using `prefixes` for abbreviation.
///
/// Only prefixes that are actually used appear in the header. Subjects are
/// emitted in deterministic term order; within a subject, `rdf:type` (as
/// `a`) comes first, then predicates in IRI order.
pub fn write(graph: &Graph, prefixes: &PrefixMap) -> String {
    let mut used: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut body = String::new();

    fn mark_used(
        rendered: &str,
        prefixes: &PrefixMap,
        used: &mut std::collections::BTreeMap<String, String>,
    ) {
        // Abbreviated renderings look like `prefix:local` (no '<').
        if rendered.starts_with('<') || rendered.starts_with('"') || rendered.starts_with("_:") {
            return;
        }
        if let Some((prefix, _)) = rendered.split_once(':') {
            if let Some(ns) = prefixes.namespace(prefix) {
                used.entry(prefix.to_owned())
                    .or_insert_with(|| ns.to_owned());
            }
        }
    }

    let subjects: Vec<Term> = graph.subjects().cloned().collect();
    for subject in &subjects {
        let mut triples = graph.triples_for_subject(subject);
        // `a` first, mirroring conventional Turtle style.
        triples.sort_by_key(|t| {
            (
                t.predicate != rdf_type(),
                t.predicate.clone(),
                t.object.clone(),
            )
        });

        let subject_str = render_term(subject, prefixes);
        mark_used(&subject_str, prefixes, &mut used);
        let _ = write!(body, "{subject_str} ");
        let indent = " ".repeat(subject_str.chars().count() + 1);

        let mut first_predicate = true;
        let mut i = 0;
        while i < triples.len() {
            let predicate = triples[i].predicate.clone();
            let mut objects = Vec::new();
            while i < triples.len() && triples[i].predicate == predicate {
                objects.push(triples[i].object.clone());
                i += 1;
            }
            if !first_predicate {
                let _ = write!(body, " ;\n{indent}");
            }
            first_predicate = false;
            let predicate_str = if predicate == rdf_type() {
                "a".to_owned()
            } else {
                render_iri(&predicate, prefixes)
            };
            mark_used(&predicate_str, prefixes, &mut used);
            let _ = write!(body, "{predicate_str} ");
            for (j, object) in objects.iter().enumerate() {
                if j > 0 {
                    let _ = write!(body, " , ");
                }
                let object_str = render_term(object, prefixes);
                mark_used(&object_str, prefixes, &mut used);
                // Datatype IRIs hide inside literal renderings; check them
                // separately for prefix usage.
                if let Term::Literal(lit) = object {
                    if let LiteralKind::Typed(dt) = lit.kind() {
                        let dt_str = render_iri(dt, prefixes);
                        mark_used(&dt_str, prefixes, &mut used);
                    }
                }
                let _ = write!(body, "{object_str}");
            }
        }
        let _ = writeln!(body, " .");
        let _ = writeln!(body);
    }

    let mut out = String::new();
    for (prefix, ns) in used {
        let _ = writeln!(out, "@prefix {prefix}: <{ns}> .");
    }
    if !out.is_empty() {
        let _ = writeln!(out);
    }
    out.push_str(body.trim_end());
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Render a term in Turtle syntax, abbreviating IRIs where possible.
pub fn render_term(term: &Term, prefixes: &PrefixMap) -> String {
    match term {
        Term::Iri(iri) => render_iri(iri, prefixes),
        Term::Blank(b) => b.to_string(),
        Term::Literal(lit) => render_literal(lit, prefixes),
    }
}

/// Render an IRI, abbreviated to `prefix:local` if possible.
pub fn render_iri(iri: &Iri, prefixes: &PrefixMap) -> String {
    prefixes.abbreviate(iri).unwrap_or_else(|| iri.to_string())
}

/// Render a literal, abbreviating its datatype IRI if possible.
pub fn render_literal(lit: &Literal, prefixes: &PrefixMap) -> String {
    match lit.kind() {
        LiteralKind::Typed(dt) => {
            format!(
                "\"{}\"^^{}",
                crate::literal::escape_literal(lit.lexical()),
                render_iri(dt, prefixes)
            )
        }
        _ => lit.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::{foaf, ont};
    use crate::triple::Triple;
    use crate::turtle::parser;

    fn sample() -> Graph {
        let author = Term::iri("http://example.org/db/author6");
        let mut g = Graph::new();
        g.insert(Triple::new(
            author.clone(),
            rdf_type(),
            Term::Iri(foaf::Person()),
        ));
        g.insert(Triple::new(
            author.clone(),
            foaf::title(),
            Literal::plain("Mr"),
        ));
        g.insert(Triple::new(
            author.clone(),
            foaf::firstName(),
            Literal::plain("Matthias"),
        ));
        g.insert(Triple::new(
            author.clone(),
            foaf::mbox(),
            Term::iri("mailto:hert@ifi.uzh.ch"),
        ));
        g.insert(Triple::new(
            author,
            ont::team(),
            Term::iri("http://example.org/db/team5"),
        ));
        g
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let text = write(&g, &PrefixMap::common());
        let parsed = parser::parse(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn header_only_lists_used_prefixes() {
        let g = sample();
        let text = write(&g, &PrefixMap::common());
        assert!(text.contains("@prefix foaf:"));
        assert!(text.contains("@prefix ont:"));
        assert!(!text.contains("@prefix dc:"));
        assert!(!text.contains("@prefix r3m:"));
    }

    #[test]
    fn uses_a_for_rdf_type() {
        let text = write(&sample(), &PrefixMap::common());
        assert!(text.contains(" a foaf:Person"));
    }

    #[test]
    fn unabbreviated_iris_keep_angle_brackets() {
        let text = write(&sample(), &PrefixMap::common());
        assert!(text.contains("<mailto:hert@ifi.uzh.ch>"));
        assert!(text.contains("<http://example.org/db/author6>"));
    }

    #[test]
    fn empty_graph_is_empty_document() {
        assert_eq!(write(&Graph::new(), &PrefixMap::common()), "");
    }

    #[test]
    fn typed_literal_datatype_abbreviated_and_prefix_declared() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            Term::iri("http://example.org/s"),
            ont::pubYear(),
            Literal::integer(2009),
        ));
        let text = write(&g, &PrefixMap::common());
        assert!(text.contains("\"2009\"^^xsd:integer"));
        assert!(text.contains("@prefix xsd:"));
        let parsed = parser::parse(&text).unwrap();
        assert_eq!(parsed, g);
    }
}
