//! RDF terms: IRIs, blank nodes, and literals.

use crate::iri::Iri;
use crate::literal::Literal;
use std::fmt;

/// A blank node, identified by a label local to one document/graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(String);

impl BlankNode {
    /// Create a blank node with the given label (without the `_:` prefix).
    pub fn new(label: impl Into<String>) -> Self {
        BlankNode(label.into())
    }

    /// The label without the `_:` prefix.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// Any RDF term.
///
/// The `Ord` implementation orders IRIs < blank nodes < literals and then
/// lexicographically, giving graphs a deterministic iteration order (which
/// keeps translated SQL statement order stable across runs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI term.
    Iri(Iri),
    /// A blank node.
    Blank(BlankNode),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Shorthand: IRI term parsed from a string. Panics on invalid input —
    /// intended for tests and fixtures; use `Iri::parse` for data paths.
    pub fn iri(s: &str) -> Term {
        Term::Iri(Iri::parse(s).expect("Term::iri called with invalid IRI"))
    }

    /// Shorthand: blank node term.
    pub fn blank(label: &str) -> Term {
        Term::Blank(BlankNode::new(label))
    }

    /// Shorthand: plain literal term.
    pub fn plain(s: &str) -> Term {
        Term::Literal(Literal::plain(s))
    }

    /// The IRI if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }

    /// The blank node if this term is one.
    pub fn as_blank(&self) -> Option<&BlankNode> {
        match self {
            Term::Blank(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this term may appear in subject position (IRI or blank).
    pub fn is_subject_term(&self) -> bool {
        !matches!(self, Term::Literal(_))
    }

    /// Whether this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Whether this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => iri.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(lit) => lit.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(iri: Iri) -> Self {
        Term::Iri(iri)
    }
}

impl From<Literal> for Term {
    fn from(lit: Literal) -> Self {
        Term::Literal(lit)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x.org/a").to_string(), "<http://x.org/a>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(Term::plain("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn ordering_groups_kinds() {
        let iri = Term::iri("http://x.org/a");
        let blank = Term::blank("a");
        let lit = Term::plain("a");
        assert!(iri < blank);
        assert!(blank < lit);
    }

    #[test]
    fn accessors() {
        let t = Term::iri("http://x.org/a");
        assert!(t.as_iri().is_some());
        assert!(t.as_literal().is_none());
        assert!(t.is_subject_term());
        assert!(!Term::plain("x").is_subject_term());
    }

    #[test]
    fn conversions() {
        let iri = Iri::parse("http://x.org/a").unwrap();
        let t: Term = iri.clone().into();
        assert_eq!(t.as_iri(), Some(&iri));
        let t: Term = Literal::plain("v").into();
        assert!(t.is_literal());
    }
}
