//! Snapshot format: a full materialization of the [`rel::Database`]
//! heap — every table's `(row id, values)` stream, its row-id
//! allocator, and its secondary-index column set — checksummed and
//! stamped with the commit sequence it covers plus a schema
//! fingerprint.
//!
//! ```text
//! file := MAGIC seq:u64 fingerprint:u64
//!         n_syms:u32 str*               (dictionary: pid → string)
//!         n_tables:u32 table* crc32:u32
//! table := name:str next_row_id:u64
//!          n_secondary:u32 column:str*
//!          n_rows:u64 (row_id:u64 row)*
//! ```
//!
//! Text cells inside rows are persistent dictionary ids; the embedded
//! dictionary section is the *full* live pid table at checkpoint time
//! (not just the strings the heap references), because WAL units
//! written after the checkpoint extend the writer's table from its
//! current end — recovery must resume the pid space exactly where the
//! writer left it.
//!
//! Snapshots are written to a temporary name, fsynced, and renamed into
//! place, so a crash mid-checkpoint leaves the previous snapshot
//! authoritative. Loading rebuilds the database through the same
//! replay entry points recovery uses, so a loaded snapshot is
//! byte-identical (heap, indexes, and row-id allocators) to the
//! database that was serialized.
//!
//! The auto-increment counters the engine exposes are derived state —
//! `max(column) + 1` over the stored rows (see
//! `rel::Database`'s allocator notes) — so capturing the heap captures
//! them; the explicit `next_row_id` per table covers the one allocator
//! that is *not* derivable when a table's newest rows were deleted.

use crate::codec::{crc32, put_row, put_str, put_u32, put_u64, Cursor, DictTable};
use crate::error::{DurError, DurResult, IoContext};
use rel::{Database, LogicalOp, Schema};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot file magic + format version (bumped to 02 when snapshots
/// grew the embedded dictionary table).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"OASNAP02";

/// Name of the snapshot covering commit `seq`.
pub fn snapshot_file_name(seq: u64) -> String {
    format!("snapshot-{seq:020}.snap")
}

/// Parse a snapshot file name back into its commit sequence.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

// ----------------------------------------------------------------------
// Schema fingerprint
// ----------------------------------------------------------------------

// FNV-1a 64 over a canonical rendering of the schema. Stability matters
// more than speed here: the fingerprint decides whether a snapshot may
// be loaded at all.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Fingerprint of a schema: two schemas fingerprint equal iff their
/// canonical renderings (tables, columns, types, constraints) are
/// identical. `Schema`'s table map is ordered, so the rendering is
/// deterministic.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    // Value-encoding generation: bumped when the cell format changed
    // (text cells became dictionary pids), so a fingerprint match
    // guarantees the row payloads decode, not just the schema.
    fnv1a(&mut hash, b"VDICT1");
    for table in schema.tables() {
        fnv1a(&mut hash, b"T");
        fnv1a(&mut hash, table.name.as_bytes());
        for column in &table.columns {
            fnv1a(&mut hash, b"C");
            fnv1a(&mut hash, column.name.as_bytes());
            fnv1a(&mut hash, column.ty.to_string().as_bytes());
            fnv1a(
                &mut hash,
                &[
                    u8::from(column.not_null),
                    u8::from(column.unique),
                    u8::from(column.auto_increment),
                ],
            );
            if let Some(default) = &column.default {
                fnv1a(&mut hash, b"D");
                fnv1a(&mut hash, default.to_string().as_bytes());
            }
        }
        for pk in &table.primary_key {
            fnv1a(&mut hash, b"P");
            fnv1a(&mut hash, pk.as_bytes());
        }
        for fk in &table.foreign_keys {
            fnv1a(&mut hash, b"F");
            fnv1a(&mut hash, fk.column.as_bytes());
            fnv1a(&mut hash, fk.ref_table.as_bytes());
            fnv1a(&mut hash, fk.ref_column.as_bytes());
        }
        for check in &table.checks {
            fnv1a(&mut hash, b"K");
            fnv1a(&mut hash, check.name.as_bytes());
            fnv1a(&mut hash, check.predicate.to_string().as_bytes());
        }
    }
    hash
}

// ----------------------------------------------------------------------
// Serialization
// ----------------------------------------------------------------------

/// Serialize `db` as the snapshot covering commit `seq`.
///
/// `dict` is the live persistent-id table; heap strings it has not yet
/// assigned (possible on the very first checkpoint, whose base data
/// never crossed the WAL) get pids here, and the snapshot embeds the
/// full table.
pub fn encode_snapshot(seq: u64, db: &Database, dict: &mut DictTable) -> Vec<u8> {
    // Encode the tables first: pid assignment happens while rows are
    // serialized, and the embedded dictionary must precede them.
    let tables: Vec<_> = db.schema().tables().map(|t| t.name.clone()).collect();
    let mut body = Vec::new();
    put_u32(&mut body, tables.len() as u32);
    for table in &tables {
        put_str(&mut body, table);
        put_u64(&mut body, db.next_row_id(table).expect("schema table"));
        let secondary = db.secondary_index_columns(table).expect("schema table");
        put_u32(&mut body, secondary.len() as u32);
        for column in &secondary {
            put_str(&mut body, column);
        }
        put_u64(&mut body, db.row_count(table).expect("schema table") as u64);
        for (row_id, row) in db.scan(table).expect("schema table") {
            put_u64(&mut body, row_id);
            put_row(&mut body, row, dict);
        }
    }

    let mut out = Vec::with_capacity(body.len() + 64);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u64(&mut out, seq);
    put_u64(&mut out, schema_fingerprint(db.schema()));
    put_u32(&mut out, dict.len());
    for s in dict.strings_since(0) {
        put_str(&mut out, s);
    }
    out.extend_from_slice(&body);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode a snapshot against the booting `schema`, returning the
/// sequence it covers, the rebuilt database, and the persistent-id
/// table it embeds (which the caller seeds the live table from before
/// scanning the WAL). Fails with [`DurError::SchemaMismatch`] when the
/// snapshot was written for a different schema and
/// [`DurError::Corrupt`] on any structural or checksum damage.
pub fn decode_snapshot(data: &[u8], schema: &Schema) -> DurResult<(u64, Database, DictTable)> {
    if data.len() < SNAPSHOT_MAGIC.len() + 4 || &data[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(DurError::Corrupt {
            message: "snapshot magic missing".into(),
        });
    }
    let (body, trailer) = data.split_at(data.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(DurError::Corrupt {
            message: "snapshot checksum mismatch".into(),
        });
    }
    let mut cursor = Cursor::new(&body[SNAPSHOT_MAGIC.len()..], "snapshot");
    let seq = cursor.take_u64()?;
    let fingerprint = cursor.take_u64()?;
    let expected = schema_fingerprint(schema);
    if fingerprint != expected {
        return Err(DurError::SchemaMismatch {
            expected,
            found: fingerprint,
        });
    }
    let mut dict = DictTable::new();
    let n_syms = cursor.take_u32()?;
    for _ in 0..n_syms {
        let s = cursor.take_str()?;
        dict.push_str(&s);
    }
    let mut db = Database::new(schema.clone())?;
    let n_tables = cursor.take_u32()?;
    for _ in 0..n_tables {
        let table = cursor.take_str()?;
        let next_row_id = cursor.take_u64()?;
        let n_secondary = cursor.take_u32()?;
        for _ in 0..n_secondary {
            let column = cursor.take_str()?;
            db.create_index(&table, &column)?;
        }
        let n_rows = cursor.take_u64()?;
        for _ in 0..n_rows {
            let row_id = cursor.take_u64()?;
            let row = cursor.take_row(&dict)?;
            db.apply_logical(&LogicalOp::Insert {
                table: table.clone(),
                row_id,
                row,
            })?;
        }
        db.set_next_row_id(&table, next_row_id)?;
    }
    if !cursor.is_exhausted() {
        return Err(DurError::Corrupt {
            message: format!("snapshot carries {} trailing byte(s)", cursor.remaining()),
        });
    }
    Ok((seq, db, dict))
}

// ----------------------------------------------------------------------
// File I/O
// ----------------------------------------------------------------------

/// Durably write the snapshot covering `seq` into `dir`
/// (write-to-temporary, fsync, rename, fsync directory) and return its
/// final path.
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    db: &Database,
    dict: &mut DictTable,
) -> DurResult<PathBuf> {
    let bytes = encode_snapshot(seq, db, dict);
    let final_path = dir.join(snapshot_file_name(seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(seq)));
    {
        let mut file = std::fs::File::create(&tmp_path)
            .io_context(format!("create {}", tmp_path.display()))?;
        file.write_all(&bytes)
            .io_context(format!("write {}", tmp_path.display()))?;
        file.sync_all()
            .io_context(format!("fsync {}", tmp_path.display()))?;
    }
    std::fs::rename(&tmp_path, &final_path)
        .io_context(format!("rename {} into place", final_path.display()))?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// fsync a directory so a rename within it is durable. Best-effort on
/// platforms where directories cannot be opened for sync.
pub fn sync_dir(dir: &Path) -> DurResult<()> {
    match std::fs::File::open(dir) {
        Ok(handle) => handle
            .sync_all()
            .io_context(format!("fsync directory {}", dir.display())),
        Err(_) => Ok(()),
    }
}

/// Snapshot files present in `dir`, newest (highest sequence) first.
pub fn list_snapshots(dir: &Path) -> DurResult<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir).io_context(format!("list data dir {}", dir.display()))?;
    for entry in entries {
        let entry = entry.io_context("read data dir entry")?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_snapshot_name(name) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel::{Column, SqlType, Table, Value};

    fn sample_db() -> Database {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
            .add_table(
                Table::builder("author")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("team", SqlType::Integer))
                    .primary_key(&["id"])
                    .foreign_key("team", "team", "id")
                    .build(),
            )
            .unwrap();
        let mut db = Database::new(schema).unwrap();
        let a = |n: &str, v: Value| (n.to_owned(), v);
        db.insert(
            "team",
            &[a("id", Value::Int(1)), a("name", Value::text("A"))],
        )
        .unwrap();
        db.insert(
            "author",
            &[a("id", Value::Int(10)), a("team", Value::Int(1))],
        )
        .unwrap();
        db.create_index("team", "name").unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let db = sample_db();
        let bytes = encode_snapshot(42, &db, &mut DictTable::new());
        let (seq, loaded, dict) = decode_snapshot(&bytes, db.schema()).unwrap();
        assert_eq!(seq, 42);
        for table in ["team", "author"] {
            let a: Vec<_> = db.scan(table).unwrap().collect();
            let b: Vec<_> = loaded.scan(table).unwrap().collect();
            assert_eq!(a, b);
            assert_eq!(
                db.next_row_id(table).unwrap(),
                loaded.next_row_id(table).unwrap()
            );
            assert_eq!(
                db.secondary_index_columns(table).unwrap(),
                loaded.secondary_index_columns(table).unwrap()
            );
        }
        // Re-encoding the loaded database is bit-identical: pids are
        // assigned in deterministic scan order.
        assert_eq!(encode_snapshot(42, &loaded, &mut DictTable::new()), bytes);
        // Re-encoding against the *decoded* table is also identical —
        // the live writer path after recovery.
        let mut resumed = dict.clone();
        assert_eq!(encode_snapshot(42, &loaded, &mut resumed), bytes);
    }

    #[test]
    fn snapshot_embeds_the_full_live_table() {
        // Pids assigned by WAL traffic whose strings no longer appear
        // in the heap must survive a checkpoint: later WAL units extend
        // the table from the writer's end.
        let db = sample_db();
        let mut dict = DictTable::new();
        dict.push_str("deleted-from-heap");
        let bytes = encode_snapshot(1, &db, &mut dict);
        let (_, _, decoded) = decode_snapshot(&bytes, db.schema()).unwrap();
        assert_eq!(decoded.len(), dict.len());
        assert_eq!(decoded.sym_at(0), dict.sym_at(0));
    }

    #[test]
    fn snapshot_preserves_row_id_allocator_after_tail_delete() {
        let mut db = sample_db();
        let rid = db.find_by_pk("author", &[Value::Int(10)]).unwrap().unwrap();
        db.delete_row("author", rid).unwrap();
        let bytes = encode_snapshot(1, &db, &mut DictTable::new());
        let (_, loaded, _) = decode_snapshot(&bytes, db.schema()).unwrap();
        assert_eq!(
            db.next_row_id("author").unwrap(),
            loaded.next_row_id("author").unwrap()
        );
    }

    #[test]
    fn corruption_and_schema_change_are_rejected() {
        let db = sample_db();
        let bytes = encode_snapshot(1, &db, &mut DictTable::new());
        // Any flipped byte fails the checksum (or the magic).
        for at in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0xFF;
            assert!(matches!(
                decode_snapshot(&bad, db.schema()),
                Err(DurError::Corrupt { .. })
            ));
        }
        // A schema with one more column must not load the snapshot.
        let mut other = Schema::new();
        other
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .column(Column::new("extra", SqlType::Integer))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        assert!(matches!(
            decode_snapshot(&bytes, &other),
            Err(DurError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_names_round_trip() {
        assert_eq!(parse_snapshot_name(&snapshot_file_name(0)), Some(0));
        assert_eq!(
            parse_snapshot_name(&snapshot_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_snapshot_name("wal.log"), None);
        assert_eq!(parse_snapshot_name("snapshot-x.snap"), None);
    }
}
