//! The write-ahead log format: an append-only stream of checksummed,
//! length-prefixed records over *logical* row operations.
//!
//! ```text
//! file   := MAGIC record*
//! record := len:u32  crc32(payload):u32  payload[len]
//! payload:= BEGIN seq:u64 [trace:str]   (trace: originating request's
//!                                        trace id, optional)
//!         | OPS   seq:u64 delta group*  (insert/update/delete batches)
//!         | COMMIT seq:u64
//! delta  := base:u32 n_new:u32 str*     (strings this unit first
//!                                        assigned persistent ids
//!                                        base..base+n_new)
//! group  := kind:u8 table:str rows…     (consecutive ops of one kind
//!                                        and table, batched; TEXT cell
//!                                        = dictionary pid:u32)
//! ```
//!
//! Text cells inside rows are fixed-width persistent dictionary ids
//! ([`crate::codec::DictTable`]): each string crosses the log once — in
//! the delta of the first commit unit that stores it — and every later
//! occurrence costs 4 bytes. The delta carries its explicit `base` so a
//! scan can both *rebuild* the table (applied units extend it exactly at
//! `base == len`) and *verify* units already covered by a snapshot
//! (`base + n_new ≤ len` must re-state the same strings); any mismatch
//! is treated like structural corruption and ends the scan.
//!
//! One committed transaction is one *commit unit*: `BEGIN seq`, one
//! `OPS seq` record carrying every logical operation the transaction
//! applied (savepoint-rolled-back work already excluded by
//! [`rel::Database::commit_logged`]), and `COMMIT seq` — written with a
//! single `write(2)` so a torn tail is always a suffix of one unit.
//! An atomic update script commits once, so it logs as one unit.
//!
//! Recovery applies only operations bracketed by a matching
//! `BEGIN…COMMIT`; a unit whose `COMMIT` never made it to disk (torn
//! write, crash between write and fsync) is dropped and the file is
//! truncated back to the end of the last committed unit. Checksums make
//! "dropped" safe: any partial or bit-flipped record fails its CRC and
//! terminates the scan *before* the damage can be applied.

use crate::codec::{crc32, put_row, put_str, put_u32, put_u64, Cursor, DictTable};
use crate::error::{DurError, DurResult};
use rel::{LogicalOp, RowId};

/// WAL file magic + format version (bumped to 002 when text cells
/// became dictionary pids).
pub const WAL_MAGIC: &[u8; 8] = b"OAWAL002";

const KIND_BEGIN: u8 = 1;
const KIND_OPS: u8 = 2;
const KIND_COMMIT: u8 = 3;

const GROUP_INSERT: u8 = 1;
const GROUP_UPDATE: u8 = 2;
const GROUP_DELETE: u8 = 3;

// Sanity bound on one record: a single commit unit's OPS record holds
// one transaction's operations, and transactions are bounded by memory
// long before this.
const MAX_RECORD_BYTES: u32 = 1 << 30;

// ----------------------------------------------------------------------
// Encoding
// ----------------------------------------------------------------------

fn push_record(out: &mut Vec<u8>, payload: &[u8]) {
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

fn marker(kind: u8, seq: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9);
    payload.push(kind);
    put_u64(&mut payload, seq);
    payload
}

// Batch tag of one logical op.
fn group_kind(op: &LogicalOp) -> (u8, &str) {
    match op {
        LogicalOp::Insert { table, .. } => (GROUP_INSERT, table),
        LogicalOp::Update { table, .. } => (GROUP_UPDATE, table),
        LogicalOp::Delete { table, .. } => (GROUP_DELETE, table),
    }
}

/// Encode one committed transaction as a complete commit unit
/// (`BEGIN`, `OPS`, `COMMIT`), ready to append in a single write.
/// Consecutive operations of one kind against one table are folded
/// into a batch so the table name is stored once per run — the
/// set-based write pipeline produces exactly such runs.
///
/// `dict` is the live persistent-id table; strings first seen by this
/// unit are assigned the next dense pids and written into the unit's
/// delta section. On a failed append the caller must undo those
/// assignments ([`DictTable::truncate`] back to the pre-call length).
///
/// `trace_id` is the originating request's trace id, stamped into the
/// `BEGIN` record so a replica's apply can link back to the leader-side
/// trace. `None` encodes the bare legacy `BEGIN` (9 bytes), which old
/// logs hold and this decoder still accepts.
pub fn encode_commit_unit(
    seq: u64,
    ops: &[LogicalOp],
    dict: &mut DictTable,
    trace_id: Option<&str>,
) -> Vec<u8> {
    // Count batch boundaries first so the OPS payload can lead with
    // its group count.
    let mut groups: Vec<(u8, &str, &[LogicalOp])> = Vec::new();
    let mut start = 0;
    for i in 1..=ops.len() {
        let boundary = i == ops.len() || group_kind(&ops[i]) != group_kind(&ops[start]);
        if boundary {
            let (kind, table) = group_kind(&ops[start]);
            groups.push((kind, table, &ops[start..i]));
            start = i;
        }
    }

    // Encode the row groups first: pid assignment happens here, and the
    // delta of newly assigned strings must precede the rows on disk.
    let base = dict.len();
    let mut body = Vec::new();
    put_u32(&mut body, groups.len() as u32);
    for (kind, table, batch) in groups {
        body.push(kind);
        put_str(&mut body, table);
        put_u32(&mut body, batch.len() as u32);
        for op in batch {
            match op {
                LogicalOp::Insert { row_id, row, .. } | LogicalOp::Update { row_id, row, .. } => {
                    put_u64(&mut body, *row_id);
                    put_row(&mut body, row, dict);
                }
                LogicalOp::Delete { row_id, .. } => {
                    put_u64(&mut body, *row_id);
                }
            }
        }
    }

    let mut payload = Vec::with_capacity(body.len() + 32);
    payload.push(KIND_OPS);
    put_u64(&mut payload, seq);
    put_u32(&mut payload, base);
    put_u32(&mut payload, dict.len() - base);
    for s in dict.strings_since(base) {
        put_str(&mut payload, s);
    }
    payload.extend_from_slice(&body);

    let mut begin = marker(KIND_BEGIN, seq);
    if let Some(trace) = trace_id {
        put_str(&mut begin, trace);
    }

    let mut out = Vec::with_capacity(payload.len() + begin.len() + 42);
    push_record(&mut out, &begin);
    push_record(&mut out, &payload);
    push_record(&mut out, &marker(KIND_COMMIT, seq));
    out
}

// ----------------------------------------------------------------------
// Decoding
// ----------------------------------------------------------------------

// One decoded record.
enum Record {
    Begin(u64, Option<String>),
    Ops(u64, Vec<LogicalOp>),
    Commit(u64),
}

fn decode_payload(payload: &[u8], dict: &mut DictTable) -> DurResult<Record> {
    let mut cursor = Cursor::new(payload, "wal record");
    let kind = cursor.take_u8()?;
    let seq = cursor.take_u64()?;
    let record = match kind {
        KIND_BEGIN => {
            // The trace id is optional: legacy records end right after
            // the seq, traced records carry one trailing string.
            let trace_id = if cursor.is_exhausted() {
                None
            } else {
                Some(cursor.take_str()?)
            };
            Record::Begin(seq, trace_id)
        }
        KIND_COMMIT => Record::Commit(seq),
        KIND_OPS => {
            // Dictionary delta: strings this unit assigned pids
            // base..base+n_new. A unit already covered by a snapshot
            // re-states pids the snapshot table holds — verify them;
            // a fresh unit must extend the table exactly at its end.
            let base = cursor.take_u32()?;
            let n_new = cursor.take_u32()?;
            if base > dict.len() {
                return Err(DurError::Corrupt {
                    message: format!(
                        "wal record delta starts at pid {base} beyond table of {}",
                        dict.len()
                    ),
                });
            }
            for i in 0..n_new {
                let s = cursor.take_str()?;
                let pid = base + i;
                match dict.sym_at(pid) {
                    Some(known) if known.as_str() == s => {}
                    Some(known) => {
                        return Err(DurError::Corrupt {
                            message: format!(
                                "wal record delta re-states pid {pid} as {s:?}, table holds {:?}",
                                known.as_str()
                            ),
                        })
                    }
                    None => dict.push_str(&s),
                }
            }
            let n_groups = cursor.take_u32()?;
            let mut ops = Vec::new();
            for _ in 0..n_groups {
                let group = cursor.take_u8()?;
                let table = cursor.take_str()?;
                let n_rows = cursor.take_u32()?;
                for _ in 0..n_rows {
                    let row_id: RowId = cursor.take_u64()?;
                    ops.push(match group {
                        GROUP_INSERT => LogicalOp::Insert {
                            table: table.clone(),
                            row_id,
                            row: cursor.take_row(dict)?,
                        },
                        GROUP_UPDATE => LogicalOp::Update {
                            table: table.clone(),
                            row_id,
                            row: cursor.take_row(dict)?,
                        },
                        GROUP_DELETE => LogicalOp::Delete {
                            table: table.clone(),
                            row_id,
                        },
                        other => {
                            return Err(DurError::Corrupt {
                                message: format!("wal record holds unknown batch kind {other}"),
                            })
                        }
                    });
                }
            }
            Record::Ops(seq, ops)
        }
        other => {
            return Err(DurError::Corrupt {
                message: format!("wal record holds unknown record kind {other}"),
            })
        }
    };
    if !cursor.is_exhausted() {
        return Err(DurError::Corrupt {
            message: format!("wal record carries {} trailing byte(s)", cursor.remaining()),
        });
    }
    Ok(record)
}

/// One fully committed transaction recovered from the log.
pub struct CommitUnit {
    /// The commit sequence number.
    pub seq: u64,
    /// The transaction's logical operations, in application order.
    pub ops: Vec<LogicalOp>,
    /// Trace id of the request that wrote the unit, if it was traced —
    /// the cross-node link a replica's apply span attaches to.
    pub trace_id: Option<String>,
}

/// Result of scanning a WAL byte stream (everything after the magic).
pub struct WalScan {
    /// Fully committed units, in log order.
    pub units: Vec<CommitUnit>,
    /// Absolute file offset (magic included) one past the last
    /// committed unit — everything beyond is a torn or uncommitted
    /// tail the caller must truncate.
    pub durable_end: u64,
}

/// Scan the record stream (the file content *after* [`WAL_MAGIC`]),
/// extending `dict` with each unit's dictionary delta as it decodes.
///
/// The scan is prefix-greedy and never fails: any malformed, torn, or
/// checksum-failing record — or a complete record that breaks the
/// `BEGIN → OPS → COMMIT` bracketing — ends the scan at the last fully
/// committed unit. That torn-tail tolerance is the crash contract; a
/// *clean* log simply scans to its end. On return `dict` holds exactly
/// the assignments of the committed units (a torn unit's delta, applied
/// while decoding its OPS record, is rolled back), so the caller can
/// adopt it as the live table for subsequent appends.
pub fn scan_records(data: &[u8], dict: &mut DictTable) -> WalScan {
    let mut units = Vec::new();
    let mut durable_end = WAL_MAGIC.len() as u64;
    let mut durable_dict_len = dict.len();
    let mut pos = 0usize;
    // The unit being assembled: (seq, trace id, ops once the OPS
    // record arrived).
    let mut pending: Option<(u64, Option<String>, Option<Vec<LogicalOp>>)> = None;

    while data.len() - pos >= 8 {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES || data.len() - pos - 8 < len as usize {
            break; // torn length prefix or torn payload
        }
        let payload = &data[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            break; // bit rot or torn write inside the payload
        }
        let Ok(record) = decode_payload(payload, dict) else {
            break; // structurally invalid payload
        };
        pos += 8 + len as usize;
        match record {
            Record::Begin(seq, trace_id) => {
                // A BEGIN while a unit is pending means the previous
                // unit never committed; drop it and start over.
                pending = Some((seq, trace_id, None));
            }
            Record::Ops(seq, ops) => match &mut pending {
                Some((begin_seq, _, slot)) if *begin_seq == seq && slot.is_none() => {
                    *slot = Some(ops);
                }
                _ => break, // OPS without its BEGIN: bracketing broken
            },
            Record::Commit(seq) => match pending.take() {
                Some((begin_seq, trace_id, Some(ops))) if begin_seq == seq => {
                    units.push(CommitUnit { seq, ops, trace_id });
                    durable_end = WAL_MAGIC.len() as u64 + pos as u64;
                    durable_dict_len = dict.len();
                }
                _ => break, // COMMIT without BEGIN+OPS: bracketing broken
            },
        }
    }
    // The table must describe the durable prefix only: an OPS record
    // whose COMMIT never made it extended the table while decoding, and
    // those pids will be reassigned by future appends.
    dict.truncate(durable_dict_len);
    WalScan { units, durable_end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel::Value;

    fn sample_ops() -> Vec<LogicalOp> {
        vec![
            LogicalOp::Insert {
                table: "team".into(),
                row_id: 0,
                row: vec![Value::Int(1), Value::text("A"), Value::Null],
            },
            LogicalOp::Insert {
                table: "team".into(),
                row_id: 1,
                row: vec![Value::Int(2), Value::Null, Value::Null],
            },
            LogicalOp::Update {
                table: "team".into(),
                row_id: 0,
                row: vec![Value::Int(1), Value::text("B"), Value::Null],
            },
            LogicalOp::Delete {
                table: "team".into(),
                row_id: 1,
            },
        ]
    }

    #[test]
    fn commit_units_round_trip() {
        let mut wdict = DictTable::new();
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_commit_unit(
            1,
            &sample_ops(),
            &mut wdict,
            Some("abc-1-req"),
        ));
        stream.extend_from_slice(&encode_commit_unit(2, &sample_ops()[..1], &mut wdict, None));
        let mut rdict = DictTable::new();
        let scan = scan_records(&stream, &mut rdict);
        assert_eq!(scan.units.len(), 2);
        assert_eq!(scan.units[0].seq, 1);
        assert_eq!(scan.units[0].ops, sample_ops());
        assert_eq!(scan.units[1].ops, sample_ops()[..1]);
        assert_eq!(
            scan.durable_end,
            WAL_MAGIC.len() as u64 + stream.len() as u64
        );
        // The reader rebuilt the writer's pid table exactly.
        assert_eq!(rdict.len(), wdict.len());
        for pid in 0..wdict.len() {
            assert_eq!(rdict.sym_at(pid), wdict.sym_at(pid));
        }
    }

    #[test]
    fn repeated_strings_cross_the_log_once() {
        let mut dict = DictTable::new();
        let first = encode_commit_unit(1, &sample_ops(), &mut dict, None);
        // A later unit reusing the same strings carries an empty delta
        // and fixed-width pid cells — far smaller than the first.
        let second = encode_commit_unit(2, &sample_ops(), &mut dict, None);
        assert!(second.len() < first.len());
        assert_eq!(dict.len(), 2); // "A" and "B", once each
    }

    #[test]
    fn torn_tail_at_every_byte_keeps_complete_units() {
        let mut wdict = DictTable::new();
        let first = encode_commit_unit(1, &sample_ops(), &mut wdict, None);
        let second = encode_commit_unit(2, &sample_ops(), &mut wdict, None);
        let mut stream = first.clone();
        stream.extend_from_slice(&second);
        let intact_end = WAL_MAGIC.len() as u64 + first.len() as u64;
        for cut in first.len()..stream.len() {
            let mut rdict = DictTable::new();
            let scan = scan_records(&stream[..cut], &mut rdict);
            assert_eq!(scan.units.len(), 1, "cut at {cut}");
            assert_eq!(scan.durable_end, intact_end, "cut at {cut}");
            // Only the surviving unit's delta remains in the table.
            assert_eq!(rdict.len(), 2, "cut at {cut}");
        }
        // The uncut stream holds both.
        assert_eq!(scan_records(&stream, &mut DictTable::new()).units.len(), 2);
    }

    #[test]
    fn flipped_byte_drops_the_damaged_suffix() {
        let mut wdict = DictTable::new();
        let first = encode_commit_unit(1, &sample_ops(), &mut wdict, None);
        let second = encode_commit_unit(2, &sample_ops(), &mut wdict, None);
        let mut stream = first.clone();
        stream.extend_from_slice(&second);
        for flip_at in first.len()..stream.len() {
            let mut corrupted = stream.clone();
            corrupted[flip_at] ^= 0xFF;
            let scan = scan_records(&corrupted, &mut DictTable::new());
            assert_eq!(scan.units.len(), 1, "flip at {flip_at}");
            assert_eq!(scan.units[0].seq, 1);
        }
    }

    #[test]
    fn unit_without_commit_is_not_applied() {
        let full = encode_commit_unit(1, &sample_ops(), &mut DictTable::new(), None);
        // Chop off the trailing COMMIT record (17 bytes: 8 header + 9
        // payload) — a complete BEGIN+OPS prefix, yet uncommitted.
        let chopped = &full[..full.len() - 17];
        let mut rdict = DictTable::new();
        let scan = scan_records(chopped, &mut rdict);
        assert!(scan.units.is_empty());
        assert_eq!(scan.durable_end, WAL_MAGIC.len() as u64);
        // The uncommitted unit's delta was rolled back with it.
        assert!(rdict.is_empty());
    }

    #[test]
    fn snapshot_covered_units_verify_against_a_seeded_table() {
        // A crash between snapshot rename and WAL truncation leaves
        // units behind whose deltas the snapshot table already covers:
        // the scan must verify, not re-extend.
        let mut wdict = DictTable::new();
        let stream = encode_commit_unit(1, &sample_ops(), &mut wdict, None);
        let mut seeded = wdict.clone(); // what the snapshot would embed
        let scan = scan_records(&stream, &mut seeded);
        assert_eq!(scan.units.len(), 1);
        assert_eq!(seeded.len(), wdict.len());
        // A seeded table that *disagrees* ends the scan (corrupt tail).
        let mut wrong = DictTable::new();
        wrong.push_str("not-A");
        wrong.push_str("not-B");
        assert!(scan_records(&stream, &mut wrong).units.is_empty());
    }

    #[test]
    fn empty_transaction_encodes_and_scans() {
        let unit = encode_commit_unit(7, &[], &mut DictTable::new(), None);
        let scan = scan_records(&unit, &mut DictTable::new());
        assert_eq!(scan.units.len(), 1);
        assert!(scan.units[0].ops.is_empty());
    }
}
