//! Binary encoding primitives shared by the WAL and snapshot formats.
//!
//! Everything is little-endian and length-prefixed; there is no
//! self-describing layer — both formats carry a magic + version tag and
//! are decoded by position. [`crc32`] is the IEEE polynomial (the one
//! zlib/PNG use), table-driven, computed at compile time.

use crate::error::{DurError, DurResult};
use rel::{Sym, Value};
use std::collections::HashMap;

// ----------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected)
// ----------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// ----------------------------------------------------------------------
// Writers
// ----------------------------------------------------------------------

/// Append a `u32` (LE).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (LE).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

// Value tags. Stable on disk — append-only, never renumber.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_TEXT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_DOUBLE: u8 = 4;

// ----------------------------------------------------------------------
// Persistent dictionary ids
// ----------------------------------------------------------------------

/// The durable id space for interned strings.
///
/// In-memory [`Sym`] ids depend on process intern order, so they must
/// never reach disk. The WAL and snapshot formats instead use dense
/// *persistent ids* (pids) assigned in encode order by this table: a
/// TEXT value on disk is a fixed-width `pid:u32`, snapshots embed the
/// whole `pid → string` table, and each WAL commit unit carries the
/// delta of strings first encoded by that unit. On recovery the table
/// is rebuilt (snapshot table + per-unit deltas) and pids are mapped
/// back to whatever `Sym`s this process assigns.
///
/// The live table is owned by the durability handle's append state, so
/// pid assignment is serialized by the same lock that orders commit
/// units in the log.
#[derive(Debug, Default, Clone)]
pub struct DictTable {
    syms: Vec<Sym>,
    pids: HashMap<Sym, u32>,
}

impl DictTable {
    /// An empty table (fresh data directory).
    pub fn new() -> Self {
        DictTable::default()
    }

    /// Number of assigned pids.
    pub fn len(&self) -> u32 {
        self.syms.len() as u32
    }

    /// Whether no pid has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The pid for `sym`, assigning the next dense id if unseen.
    pub fn pid_of(&mut self, sym: Sym) -> u32 {
        if let Some(&pid) = self.pids.get(&sym) {
            return pid;
        }
        let pid = self.syms.len() as u32;
        self.syms.push(sym);
        self.pids.insert(sym, pid);
        pid
    }

    /// The symbol a pid maps to, if assigned.
    pub fn sym_at(&self, pid: u32) -> Option<Sym> {
        self.syms.get(pid as usize).copied()
    }

    /// The strings assigned pids `from..` (a commit unit's delta, when
    /// `from` is the table length before encoding it).
    pub fn strings_since(&self, from: u32) -> impl Iterator<Item = &'static str> + '_ {
        self.syms[from as usize..].iter().map(|s| s.as_str())
    }

    /// Drop every assignment at or past `len` — undoes a unit whose
    /// write failed, so the table tracks what the log actually holds.
    pub fn truncate(&mut self, len: u32) {
        for sym in self.syms.drain(len as usize..) {
            self.pids.remove(&sym);
        }
    }

    /// Append `s` as the next pid (rebuilding from a snapshot table or
    /// a WAL delta). Interns the string.
    pub fn push_str(&mut self, s: &str) {
        let sym = Sym::intern(s);
        let pid = self.syms.len() as u32;
        self.syms.push(sym);
        self.pids.insert(sym, pid);
    }
}

/// Append one SQL value (tag + payload); text is encoded as its
/// persistent dictionary id, assigned by `dict` on first sight.
pub fn put_value(buf: &mut Vec<u8>, value: &Value, dict: &mut DictTable) {
    match value {
        Value::Null => buf.push(TAG_NULL),
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_u64(buf, *i as u64);
        }
        Value::Text(s) => {
            buf.push(TAG_TEXT);
            put_u32(buf, dict.pid_of(*s));
        }
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Double(d) => {
            buf.push(TAG_DOUBLE);
            put_u64(buf, d.to_bits());
        }
    }
}

/// Append a full row (column count + values).
pub fn put_row(buf: &mut Vec<u8>, row: &[Value], dict: &mut DictTable) {
    put_u32(buf, row.len() as u32);
    for value in row {
        put_value(buf, value, dict);
    }
}

// ----------------------------------------------------------------------
// Reader
// ----------------------------------------------------------------------

/// Positional reader over a decoded buffer. Every accessor fails with
/// [`DurError::Corrupt`] instead of panicking — corrupt on-disk state
/// must surface as a recoverable error, never take the process down.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Context string used in corruption messages ("wal record",
    /// "snapshot", …).
    what: &'static str,
}

impl<'a> Cursor<'a> {
    /// Read `data` from the start.
    pub fn new(data: &'a [u8], what: &'static str) -> Self {
        Cursor { data, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(&self, need: &str) -> DurError {
        DurError::Corrupt {
            message: format!(
                "truncated {} at offset {}: expected {need}",
                self.what, self.pos
            ),
        }
    }

    fn take(&mut self, n: usize) -> DurResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt("more bytes"));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn take_u8(&mut self) -> DurResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32` (LE).
    pub fn take_u32(&mut self) -> DurResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64` (LE).
    pub fn take_u64(&mut self) -> DurResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> DurResult<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DurError::Corrupt {
            message: format!("{} holds non-UTF-8 string data", self.what),
        })
    }

    /// Read one SQL value; text pids resolve through `dict` (every pid
    /// must already be assigned — snapshot table or a preceding delta).
    pub fn take_value(&mut self, dict: &DictTable) -> DurResult<Value> {
        Ok(match self.take_u8()? {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(self.take_u64()? as i64),
            TAG_TEXT => {
                let pid = self.take_u32()?;
                let sym = dict.sym_at(pid).ok_or_else(|| DurError::Corrupt {
                    message: format!(
                        "{} references dictionary id {pid} beyond table of {}",
                        self.what,
                        dict.len()
                    ),
                })?;
                Value::Text(sym)
            }
            TAG_BOOL => Value::Bool(self.take_u8()? != 0),
            TAG_DOUBLE => Value::Double(f64::from_bits(self.take_u64()?)),
            tag => {
                return Err(DurError::Corrupt {
                    message: format!("{} holds unknown value tag {tag}", self.what),
                })
            }
        })
    }

    /// Read a full row (column count + values).
    pub fn take_row(&mut self, dict: &DictTable) -> DurResult<Vec<rel::Value>> {
        let n = self.take_u32()? as usize;
        if n > self.remaining() {
            // A row cannot have more columns than bytes left; reject
            // early so a corrupt count cannot drive a huge allocation.
            return Err(self.corrupt("plausible column count"));
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.take_value(dict)?);
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn values_round_trip() {
        let values = [
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::text("héllo ' \" \0 world"),
            Value::Bool(true),
            Value::Bool(false),
            Value::Double(-0.0),
            Value::Double(f64::INFINITY),
            Value::Double(2.5),
        ];
        let mut dict = DictTable::new();
        let mut buf = Vec::new();
        put_row(&mut buf, &values, &mut dict);
        let mut cursor = Cursor::new(&buf, "test");
        let back = cursor.take_row(&dict).unwrap();
        assert!(cursor.is_exhausted());
        // NaN-free inputs: PartialEq comparison is sound. Double(-0.0)
        // round-trips by bit pattern.
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            match (a, b) {
                (Value::Double(x), Value::Double(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        for cut in 0..buf.len() {
            let mut cursor = Cursor::new(&buf[..cut], "test");
            assert!(matches!(cursor.take_str(), Err(DurError::Corrupt { .. })));
        }
    }

    #[test]
    fn absurd_row_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut cursor = Cursor::new(&buf, "test");
        assert!(matches!(
            cursor.take_row(&DictTable::new()),
            Err(DurError::Corrupt { .. })
        ));
    }

    #[test]
    fn text_values_encode_as_fixed_width_pids() {
        let long = "x".repeat(200);
        let mut dict = DictTable::new();
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::text(&long), &mut dict);
        put_value(&mut buf, &Value::text(&long), &mut dict);
        // Tag + u32 pid each, regardless of string length; one pid.
        assert_eq!(buf.len(), 10);
        assert_eq!(dict.len(), 1);
        let mut cursor = Cursor::new(&buf, "test");
        assert_eq!(cursor.take_value(&dict).unwrap(), Value::text(&long));
        assert_eq!(cursor.take_value(&dict).unwrap(), Value::text(&long));
    }

    #[test]
    fn unassigned_pid_is_corrupt_not_a_panic() {
        let mut dict = DictTable::new();
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::text("only"), &mut dict);
        let mut cursor = Cursor::new(&buf, "test");
        assert!(matches!(
            cursor.take_value(&DictTable::new()),
            Err(DurError::Corrupt { .. })
        ));
    }

    #[test]
    fn dict_table_truncate_rolls_back_assignments() {
        let mut dict = DictTable::new();
        let a = dict.pid_of(rel::Sym::intern("dict-tbl-a"));
        let mark = dict.len();
        dict.pid_of(rel::Sym::intern("dict-tbl-b"));
        dict.pid_of(rel::Sym::intern("dict-tbl-c"));
        assert_eq!(
            dict.strings_since(mark).collect::<Vec<_>>(),
            ["dict-tbl-b", "dict-tbl-c"]
        );
        dict.truncate(mark);
        assert_eq!(dict.len(), mark);
        // Rolled-back strings get fresh pids on re-encode.
        assert_eq!(dict.pid_of(rel::Sym::intern("dict-tbl-b")), mark);
        // Retained assignments are untouched.
        assert_eq!(dict.pid_of(rel::Sym::intern("dict-tbl-a")), a);
    }
}
