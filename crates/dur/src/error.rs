//! Error type of the durability subsystem.

use std::fmt;

/// Convenience result alias.
pub type DurResult<T> = Result<T, DurError>;

/// Everything the durability layer can fail on.
#[derive(Debug)]
pub enum DurError {
    /// An OS-level I/O operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// On-disk state failed validation (bad magic, checksum mismatch,
    /// truncated structure). Recovery treats corruption *at the WAL
    /// tail* as a torn write and truncates; anywhere else it is an
    /// error.
    Corrupt {
        /// What was found.
        message: String,
    },
    /// A snapshot was written for a different schema than the one the
    /// database booted with. Deliberately a hard error: silently
    /// reinitializing would discard committed data.
    SchemaMismatch {
        /// Fingerprint of the booting schema.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// Replaying a logged operation failed in the engine — the log and
    /// the snapshot disagree about the database's history.
    Engine(rel::RelError),
    /// A previous WAL write or fsync failed; the log may be torn beyond
    /// the last durable commit, so all further durable commits are
    /// refused until the process restarts and recovers.
    Poisoned,
}

impl fmt::Display for DurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurError::Io { context, source } => write!(f, "{context}: {source}"),
            DurError::Corrupt { message } => write!(f, "corrupt durable state: {message}"),
            DurError::SchemaMismatch { expected, found } => write!(
                f,
                "snapshot schema fingerprint {found:#018x} does not match the \
                 booting schema {expected:#018x}; refusing to recover across a \
                 schema change"
            ),
            DurError::Engine(e) => write!(f, "replay rejected by the engine: {e}"),
            DurError::Poisoned => write!(
                f,
                "durability poisoned by an earlier log-write failure; restart to recover"
            ),
        }
    }
}

impl std::error::Error for DurError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurError::Io { source, .. } => Some(source),
            DurError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rel::RelError> for DurError {
    fn from(e: rel::RelError) -> Self {
        DurError::Engine(e)
    }
}

/// Attach `context` to an I/O result.
pub(crate) trait IoContext<T> {
    fn io_context(self, context: impl Into<String>) -> DurResult<T>;
}

impl<T> IoContext<T> for std::io::Result<T> {
    fn io_context(self, context: impl Into<String>) -> DurResult<T> {
        self.map_err(|source| DurError::Io {
            context: context.into(),
            source,
        })
    }
}
