//! Durability subsystem for the OntoAccess reproduction: a write-ahead
//! log of logical row operations, full-database snapshots, and crash
//! recovery — std-only, like the rest of the workspace (the build
//! environment has no registry access).
//!
//! The design follows the ledger shape of production RDF stores: an
//! append-only log of committed operations ([`wal`]) plus periodically
//! materialized snapshots ([`snapshot`]), with recovery defined as
//! *newest valid snapshot + committed WAL suffix* and a torn tail
//! truncated. The unit logged is the **logical** row operation stream a
//! committed `rel` transaction actually applied
//! ([`rel::Database::commit_logged`]): inserts carry their assigned row
//! ids, so replay reproduces the pre-crash heap, indexes, and row-id
//! allocators byte-identically.
//!
//! # Commit protocol (group commit)
//!
//! A committer appends its commit unit with [`Durability::append_commit`]
//! *before* acknowledging (while still holding the database write lock,
//! so log order equals commit order), then waits on
//! [`Durability::sync_to`]. The wait is a group commit: one `fsync`
//! covers every record appended before it started, so concurrent
//! committers piggyback on whichever fsync is in flight instead of
//! issuing their own — commit throughput under multi-writer load is
//! bounded by fsync *rate*, not fsync rate × writers.
//!
//! # Crash contract
//!
//! * An acknowledged commit (one whose `sync_to` returned) survives any
//!   later crash.
//! * An unacknowledged commit either survives whole or is dropped whole
//!   (its `BEGIN…COMMIT` bracketing decides; a torn suffix is truncated
//!   on recovery).
//! * A crash during checkpoint leaves the previous snapshot
//!   authoritative (write-temporary + rename).
//! * If a WAL write or fsync ever fails, the handle poisons itself:
//!   further durable commits are refused until a restart re-runs
//!   recovery — the in-memory database is never allowed to silently
//!   diverge from what the log can reproduce.

#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod snapshot;
pub mod wal;

pub use error::{DurError, DurResult};

use crate::codec::DictTable;
use crate::error::IoContext;
use rel::{Database, LogicalOp};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// Largest byte span one [`Durability::fetch_wal`] call returns. A
/// chunk boundary may split a commit unit; followers keep the torn
/// tail buffered and complete it with the next fetch.
pub const MAX_WAL_CHUNK: u64 = 4 << 20;

// Sentinel for "no snapshot yet" in the atomic last-snapshot slot.
const NO_SNAPSHOT: u64 = u64::MAX;

// Process-global durability metrics (handles resolved once; hot paths
// touch only relaxed atomics — see `obs`).
struct DurMetrics {
    append: &'static obs::Histogram,
    fsync: &'static obs::Histogram,
    group_units: &'static obs::Histogram,
    checkpoint: &'static obs::Histogram,
}

fn metrics() -> &'static DurMetrics {
    static METRICS: std::sync::OnceLock<DurMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = obs::registry();
        DurMetrics {
            append: registry.latency_histogram(
                "ontoaccess_wal_append_seconds",
                "Time to encode and write one commit unit to the WAL",
            ),
            fsync: registry.latency_histogram(
                "ontoaccess_wal_fsync_seconds",
                "Duration of each WAL fsync (group commit)",
            ),
            group_units: registry.sized_histogram(
                "ontoaccess_wal_group_commit_units",
                "Commit units made durable per fsync",
                obs::COUNT_BUCKETS,
            ),
            checkpoint: registry.latency_histogram(
                "ontoaccess_checkpoint_seconds",
                "Duration of each checkpoint (snapshot write + WAL truncation)",
            ),
        }
    })
}

// Append-side state: the next commit sequence, the current log size,
// and the persistent-id dictionary table. Guarded by one mutex so
// records are framed into the file atomically and in sequence order —
// which also serializes pid assignment, keeping pids dense in commit
// order.
#[derive(Debug)]
struct AppendState {
    next_seq: u64,
    wal_bytes: u64,
    dict: DictTable,
}

// Sync-side state for group commit.
#[derive(Debug)]
struct SyncState {
    // Highest sequence known durable (fsynced, or covered by a
    // checkpointed snapshot).
    synced_seq: u64,
    // WAL byte extent known durable — replication serves exactly
    // [0, durable_bytes): fsynced whole commit units, never the tail a
    // crash could tear. Checkpoint clamps it back to the magic length
    // (under this mutex, together with the epoch store) the moment the
    // snapshot makes the log's content obsolete.
    durable_bytes: u64,
    // Whether some thread is currently inside fsync (or checkpoint
    // holds the token while truncating).
    sync_running: bool,
}

/// A coordinate in the leader's WAL, as served to replication
/// followers.
///
/// `epoch` identifies one *content lifetime* of the log file: it is the
/// sequence of the newest snapshot (or [`u64::MAX`] before the first
/// one), which changes exactly when a checkpoint truncates away content
/// a follower might still be reading — and is stable across leader
/// restarts, so follower offsets survive a leader crash. A byte offset
/// is only meaningful together with the epoch it was observed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    /// Content lifetime of the WAL file (raw last-snapshot slot).
    pub epoch: u64,
    /// Bytes of the file (magic included) that are durable.
    pub durable_bytes: u64,
    /// Highest durable commit sequence.
    pub durable_seq: u64,
    /// Sequence of the newest snapshot, if any.
    pub snapshot_seq: Option<u64>,
}

/// Outcome of a follower's [`Durability::fetch_wal`] poll.
#[derive(Debug)]
pub enum WalFetch {
    /// Durable bytes starting exactly at the requested offset.
    Data {
        /// The bytes (whole span is durable; may end mid-unit when the
        /// chunk cap splits one).
        bytes: Vec<u8>,
        /// Position after the read (epoch verified unchanged).
        position: WalPosition,
    },
    /// The follower is at the durable edge and nothing new arrived
    /// within the timeout.
    CaughtUp {
        /// Current position.
        position: WalPosition,
    },
    /// The requested coordinate is not servable — the epoch changed
    /// (checkpoint truncation) or the offset is out of range. The
    /// follower must restart from the returned position: offset
    /// [`wal::WAL_MAGIC`]`.len()` in the new epoch if its applied
    /// sequence covers the snapshot, else a fresh snapshot bootstrap.
    Reposition {
        /// Current position.
        position: WalPosition,
    },
}

/// What recovery found and did while opening a data directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the snapshot recovery started from (`None` = fresh
    /// directory or no usable snapshot; recovery started from the
    /// caller's initial database).
    pub snapshot_seq: Option<u64>,
    /// Committed transactions replayed from the WAL suffix.
    pub commits_replayed: u64,
    /// Logical row operations replayed.
    pub rows_replayed: u64,
    /// Bytes of torn/uncommitted WAL tail truncated.
    pub truncated_bytes: u64,
}

/// Point-in-time durability counters (surfaced on a server's `/status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Current WAL file size in bytes.
    pub wal_bytes: u64,
    /// Commit units appended since open.
    pub commits_appended: u64,
    /// `fsync` calls issued since open — under concurrent writers this
    /// stays below `commits_appended` (group commit).
    pub wal_syncs: u64,
    /// Committed transactions replayed at open.
    pub records_replayed: u64,
    /// Logical row operations replayed at open.
    pub rows_replayed: u64,
    /// Sequence of the newest snapshot on disk.
    pub last_snapshot_seq: Option<u64>,
    /// Highest commit sequence appended so far.
    pub last_commit_seq: u64,
    /// Whether an I/O failure poisoned the handle (writes refused).
    pub poisoned: bool,
}

/// Handle to one durable data directory: the open WAL plus checkpoint
/// state. `Send + Sync`; one handle serves every committer.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    wal_file: File,
    append: Mutex<AppendState>,
    sync: Mutex<SyncState>,
    synced: Condvar,
    poisoned: AtomicBool,
    commits_appended: AtomicU64,
    wal_syncs: AtomicU64,
    last_snapshot_seq: AtomicU64,
    // Recovery facts, fixed at open.
    commits_replayed: u64,
    rows_replayed: u64,
}

/// Result of [`Durability::open`]: the recovered database, the live
/// durability handle, and what recovery did.
#[derive(Debug)]
pub struct Opened {
    /// The recovered database (newest valid snapshot + committed WAL
    /// suffix).
    pub db: Database,
    /// The durability handle for the directory.
    pub durability: Durability,
    /// What recovery found.
    pub report: RecoveryReport,
}

impl Durability {
    /// Open (or create) a data directory and recover its durable state.
    ///
    /// `initial` provides the schema and — for a fresh directory — the
    /// base data: on first open the initial database is immediately
    /// checkpointed as `snapshot-0`, so the boot-time base state
    /// survives restarts too. On later opens `initial`'s *data* is
    /// ignored; the newest snapshot plus the committed WAL suffix win,
    /// and any torn WAL tail is truncated. A snapshot written for a
    /// different schema is a hard [`DurError::SchemaMismatch`], and a
    /// corrupt newest snapshot is a hard [`DurError::Corrupt`] (the WAL
    /// was truncated against it, so no older state can substitute).
    pub fn open(dir: impl AsRef<Path>, initial: Database) -> DurResult<Opened> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).io_context(format!("create data dir {}", dir.display()))?;

        // 1. The newest snapshot is authoritative. Corruption there is
        //    a *hard* error, not a fallback: checkpoints truncate the
        //    WAL against the snapshot they write, so recovering from
        //    anything older would silently resurrect a stale state.
        //    (Snapshots are written temp + fsync + rename, so a crashed
        //    checkpoint never leaves a half-written file under the
        //    final name — a corrupt one means bit rot or tampering.)
        let mut base: Option<(u64, Database, DictTable)> = None;
        if let Some((seq, path)) = snapshot::list_snapshots(&dir)?.into_iter().next() {
            let bytes = std::fs::read(&path).io_context(format!("read {}", path.display()))?;
            let (snapshot_seq, db, dict) = snapshot::decode_snapshot(&bytes, initial.schema())?;
            debug_assert_eq!(snapshot_seq, seq, "file name vs content");
            base = Some((snapshot_seq, db, dict));
        }
        let snapshot_seq = base.as_ref().map(|(seq, ..)| *seq);
        let (base_seq, mut db, mut dict) = base.unwrap_or((0, initial, DictTable::new()));

        // 2. The WAL: open for appending, scan, replay the committed
        //    suffix, truncate anything torn.
        let wal_path = dir.join(WAL_FILE);
        let wal_file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&wal_path)
            .io_context(format!("open {}", wal_path.display()))?;
        let bytes = std::fs::read(&wal_path).io_context(format!("read {}", wal_path.display()))?;

        let mut next_seq = base_seq + 1;
        let mut commits_replayed = 0u64;
        let mut rows_replayed = 0u64;
        let mut truncated_bytes = 0u64;
        let mut wal_bytes = wal::WAL_MAGIC.len() as u64;
        let mut wal_was_empty = true;

        if bytes.len() < wal::WAL_MAGIC.len() {
            // Fresh file, or a crash tore the very first header write:
            // (re)initialize.
            if !bytes.is_empty() {
                truncated_bytes = bytes.len() as u64;
                wal_file.set_len(0).io_context("truncate torn wal header")?;
            }
            (&wal_file)
                .write_all(wal::WAL_MAGIC)
                .io_context("write wal magic")?;
            wal_file.sync_data().io_context("fsync wal magic")?;
        } else if &bytes[..wal::WAL_MAGIC.len()] != wal::WAL_MAGIC {
            // Not our file — refuse to clobber it.
            return Err(DurError::Corrupt {
                message: format!("{} is not an OntoAccess WAL", wal_path.display()),
            });
        } else {
            wal_was_empty = bytes.len() == wal::WAL_MAGIC.len();
            // The scan extends the snapshot-seeded dictionary table
            // with each committed unit's delta (and rolls torn units'
            // deltas back), so afterwards `dict` is exactly the
            // writer's table as of the durable prefix.
            let scan = wal::scan_records(&bytes[wal::WAL_MAGIC.len()..], &mut dict);
            for unit in &scan.units {
                // Units at or below the snapshot's sequence are already
                // materialized (a crash between snapshot rename and WAL
                // truncation leaves them behind harmlessly).
                if unit.seq > base_seq {
                    for op in &unit.ops {
                        db.apply_logical(op)?;
                        rows_replayed += 1;
                    }
                    commits_replayed += 1;
                }
                next_seq = next_seq.max(unit.seq + 1);
            }
            if bytes.len() as u64 > scan.durable_end {
                truncated_bytes = bytes.len() as u64 - scan.durable_end;
                wal_file
                    .set_len(scan.durable_end)
                    .io_context("truncate torn wal tail")?;
                wal_file.sync_data().io_context("fsync wal truncation")?;
            }
            wal_bytes = scan.durable_end;
        }

        // 3. First boot of a truly fresh directory: checkpoint the base
        //    state as snapshot-0 so it survives restarts.
        let mut last_snapshot = snapshot_seq;
        if snapshot_seq.is_none() && wal_was_empty {
            snapshot::write_snapshot(&dir, 0, &db, &mut dict)?;
            last_snapshot = Some(0);
        }

        let synced_seq = next_seq - 1; // everything on disk is durable
        let durability = Durability {
            dir,
            wal_file,
            append: Mutex::new(AppendState {
                next_seq,
                wal_bytes,
                dict,
            }),
            sync: Mutex::new(SyncState {
                synced_seq,
                durable_bytes: wal_bytes,
                sync_running: false,
            }),
            synced: Condvar::new(),
            poisoned: AtomicBool::new(false),
            commits_appended: AtomicU64::new(0),
            wal_syncs: AtomicU64::new(0),
            last_snapshot_seq: AtomicU64::new(last_snapshot.unwrap_or(NO_SNAPSHOT)),
            commits_replayed,
            rows_replayed,
        };
        Ok(Opened {
            db,
            durability,
            report: RecoveryReport {
                snapshot_seq,
                commits_replayed,
                rows_replayed,
                truncated_bytes,
            },
        })
    }

    /// The data directory this handle persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append one transaction's logical operations as a commit unit and
    /// return its sequence. The unit is *written* but not yet durable —
    /// call [`Durability::sync_to`] with the returned sequence before
    /// acknowledging the commit. Callers append while still holding the
    /// database write lock so log order equals commit order.
    ///
    /// On a write failure the handle poisons itself and the caller must
    /// roll the transaction back: the log may be torn beyond the last
    /// durable commit, so accepting further writes would diverge.
    ///
    /// `trace_id` — the originating request's trace id, if the commit
    /// happens under an active trace — is stamped into the unit's
    /// `BEGIN` record so replicas can link their apply back to it.
    pub fn append_commit(&self, ops: &[LogicalOp], trace_id: Option<&str>) -> DurResult<u64> {
        let span = obs::trace::span("wal.append");
        let mut append = self.append.lock().unwrap_or_else(|e| e.into_inner());
        // Checked under the append lock: a committer that was blocked
        // on the lock while another's write failed must not append
        // after the torn prefix (its unit would be structurally
        // unreachable to recovery).
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(DurError::Poisoned);
        }
        let started = Instant::now();
        let seq = append.next_seq;
        let dict_mark = append.dict.len();
        let unit = wal::encode_commit_unit(seq, ops, &mut append.dict, trace_id);
        match (&self.wal_file).write_all(&unit) {
            Ok(()) => {
                append.next_seq += 1;
                append.wal_bytes += unit.len() as u64;
                self.commits_appended.fetch_add(1, Ordering::Relaxed);
                metrics().append.observe_duration(started.elapsed());
                span.attr_u64("seq", seq);
                span.attr_u64("bytes", unit.len() as u64);
                Ok(seq)
            }
            Err(source) => {
                // The unit never (fully) reached the log, so the pids
                // it assigned must not be considered taken — recovery
                // will not see them. (The poison refuses further writes
                // anyway; this keeps the table honest for stats.)
                append.dict.truncate(dict_mark);
                self.poisoned.store(true, Ordering::SeqCst);
                Err(DurError::Io {
                    context: "append commit unit to wal".into(),
                    source,
                })
            }
        }
    }

    /// Block until commit `seq` is durable (group commit): if an fsync
    /// covering `seq` is already in flight, wait for it; otherwise run
    /// one fsync that covers every record appended so far and wake all
    /// waiters it satisfied.
    pub fn sync_to(&self, seq: u64) -> DurResult<()> {
        // Covers the whole wait — piggybacking on a running fsync
        // included — so the span length is the group-commit latency the
        // committer actually paid. `group` (commits the fsync newly
        // covered) is attached only by the committer that ran it.
        let span = obs::trace::span("wal.fsync_wait");
        span.attr_u64("seq", seq);
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(DurError::Poisoned);
            }
            // Read the fsync target *before* claiming the sync token:
            // everything appended up to here is on record before the
            // fsync starts, so it is a safe (conservative) cover claim
            // — and never taking the append lock while holding the
            // token keeps checkpoint (which holds the append lock and
            // waits for the token) deadlock-free against this path.
            let (target, target_bytes) = {
                let append = self.append.lock().unwrap_or_else(|e| e.into_inner());
                (append.next_seq - 1, append.wal_bytes)
            };
            let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
            if sync.synced_seq >= seq {
                return Ok(());
            }
            if sync.sync_running {
                // Piggyback: the running fsync may cover us; re-check
                // when it finishes.
                let _unused = self.synced.wait(sync).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            sync.sync_running = true;
            drop(sync);
            let fsync_started = Instant::now();
            let result = self.wal_file.sync_data();
            let fsync_elapsed = fsync_started.elapsed();
            let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
            sync.sync_running = false;
            match result {
                Ok(()) => {
                    metrics().fsync.observe_duration(fsync_elapsed);
                    // Commits newly covered by this fsync — the group
                    // size the amortization claim is about.
                    let group = target.saturating_sub(sync.synced_seq);
                    if group > 0 {
                        metrics().group_units.observe(group);
                        span.attr_u64("group", group);
                    }
                    sync.synced_seq = sync.synced_seq.max(target);
                    // Captured together with `target` under the append
                    // lock, so the extent is exactly the whole units the
                    // fsync covered. (After a checkpoint clamped the
                    // extent, the early `synced_seq >= seq` return above
                    // guarantees no stale pre-truncation capture reaches
                    // this line.)
                    sync.durable_bytes = sync.durable_bytes.max(target_bytes);
                    self.wal_syncs.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.poisoned.store(true, Ordering::SeqCst);
                }
            }
            drop(sync);
            self.synced.notify_all();
            // Loop: on success the next pass observes synced_seq ≥ seq;
            // on failure it observes the poison.
        }
    }

    /// Checkpoint: durably write a snapshot of `db` covering every
    /// commit appended so far, then truncate the WAL — recovery after
    /// this point is "load the snapshot, replay an (initially empty)
    /// suffix". Returns the snapshot's sequence.
    ///
    /// The caller must hold at least a read lock on the database for
    /// the duration (no writer may commit between serialization and
    /// WAL truncation — with the mediator's locking this is automatic,
    /// since committers append while holding the *write* lock).
    pub fn checkpoint(&self, db: &Database) -> DurResult<u64> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(DurError::Poisoned);
        }
        let checkpoint_started = Instant::now();
        let span = obs::trace::span("wal.checkpoint");
        let mut append = self.append.lock().unwrap_or_else(|e| e.into_inner());
        // Claim the sync token so no fsync races the truncation.
        {
            let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
            while sync.sync_running {
                sync = self.synced.wait(sync).unwrap_or_else(|e| e.into_inner());
            }
            sync.sync_running = true;
        }
        let seq = append.next_seq - 1;
        // Stage 1: write the snapshot. A failure here is a clean abort
        // — the WAL is untouched and stays authoritative. The snapshot
        // embeds the live dictionary table (under the append lock, so
        // no unit can extend it mid-serialization). Pids freshly
        // assigned *during* serialization are durable only if the
        // snapshot landed; on failure they must be rolled back, or a
        // later commit unit would reference pids no durable delta
        // declares.
        let dict_mark = append.dict.len();
        let snapshot_written =
            snapshot::write_snapshot(&self.dir, seq, db, &mut append.dict).map(|_| ());
        if snapshot_written.is_err() {
            append.dict.truncate(dict_mark);
        }
        let snapshot_ok = snapshot_written.is_ok();
        let result = match snapshot_written {
            Err(e) => Err(e),
            Ok(()) => {
                // The renamed snapshot is authoritative from here on.
                // Epoch store and durable-extent clamp happen in one
                // sync-mutex critical section so a replication read can
                // never observe the new epoch paired with the old
                // extent (and serve soon-to-be-truncated bytes under
                // the new epoch's coordinates).
                {
                    let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
                    self.last_snapshot_seq.store(seq, Ordering::Relaxed);
                    sync.durable_bytes = wal::WAL_MAGIC.len() as u64;
                }
                self.remove_stale_snapshots(seq);
                // Stage 2: empty the WAL. A failure here leaves the
                // file in an unknown state (set_len may or may not
                // have taken effect), so the handle poisons itself —
                // the documented contract for any WAL write/fsync
                // fault — and recovery on restart sorts it out (old
                // units at or below `seq` are skipped as
                // snapshot-covered).
                let truncated = self
                    .wal_file
                    .set_len(wal::WAL_MAGIC.len() as u64)
                    .io_context("truncate wal after checkpoint")
                    .and_then(|()| self.wal_file.sync_data().io_context("fsync wal truncation"));
                match truncated {
                    Ok(()) => {
                        append.wal_bytes = wal::WAL_MAGIC.len() as u64;
                        Ok(())
                    }
                    Err(e) => {
                        self.poisoned.store(true, Ordering::SeqCst);
                        Err(e)
                    }
                }
            }
        };
        {
            let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
            sync.sync_running = false;
            if snapshot_ok {
                // The snapshot covers every appended commit; committers
                // still waiting on an fsync are satisfied by it (even
                // when the WAL truncation afterwards failed).
                sync.synced_seq = sync.synced_seq.max(seq);
            }
        }
        self.synced.notify_all();
        drop(append);
        if result.is_ok() {
            metrics()
                .checkpoint
                .observe_duration(checkpoint_started.elapsed());
            span.attr_u64("seq", seq);
        }
        result.map(|()| seq)
    }

    /// The current WAL coordinate (epoch + durable extent). All epoch
    /// stores happen under the sync mutex, so the pair read here is
    /// coherent.
    pub fn wal_position(&self) -> WalPosition {
        let sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
        self.position_locked(&sync)
    }

    // Position from an already-held sync guard.
    fn position_locked(&self, sync: &SyncState) -> WalPosition {
        let snap = self.last_snapshot_seq.load(Ordering::Relaxed);
        WalPosition {
            epoch: snap,
            durable_bytes: sync.durable_bytes,
            durable_seq: sync.synced_seq,
            snapshot_seq: (snap != NO_SNAPSHOT).then_some(snap),
        }
    }

    /// Serve durable WAL bytes to a replication follower.
    ///
    /// `from` is an absolute file offset (magic included) previously
    /// learned under `epoch`. Returns [`WalFetch::Data`] with up to
    /// [`MAX_WAL_CHUNK`] bytes starting at `from`; [`WalFetch::CaughtUp`]
    /// when `from` is the durable edge and nothing new became durable
    /// within `timeout` (the long-poll); or [`WalFetch::Reposition`]
    /// when the coordinate is not servable — the epoch changed under a
    /// checkpoint truncation, or the offset is out of range. Bytes are
    /// read through a fresh read-only handle and the epoch is
    /// re-checked *after* the read, so data returned under an epoch is
    /// guaranteed to be that epoch's content.
    pub fn fetch_wal(&self, from: u64, epoch: u64, timeout: Duration) -> DurResult<WalFetch> {
        let magic = wal::WAL_MAGIC.len() as u64;
        let deadline = Instant::now() + timeout;
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(DurError::Poisoned);
            }
            let position = self.wal_position();
            if position.epoch != epoch || from < magic || from > position.durable_bytes {
                return Ok(WalFetch::Reposition { position });
            }
            if from == position.durable_bytes {
                // Caught up: park on the group-commit condvar until the
                // durable extent moves, the epoch changes, or time runs
                // out.
                let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if self.poisoned.load(Ordering::SeqCst) {
                        return Err(DurError::Poisoned);
                    }
                    let now = self.position_locked(&sync);
                    if now.epoch != epoch || now.durable_bytes != from {
                        break; // re-evaluate on the outer loop
                    }
                    let Some(remaining) = deadline
                        .checked_duration_since(Instant::now())
                        .filter(|d| !d.is_zero())
                    else {
                        return Ok(WalFetch::CaughtUp { position: now });
                    };
                    sync = self
                        .synced
                        .wait_timeout(sync, remaining)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
                continue;
            }
            // Data available. Read through a fresh handle: the shared
            // append handle's cursor belongs to writers.
            let end = position.durable_bytes.min(from + MAX_WAL_CHUNK);
            let mut bytes = vec![0u8; (end - from) as usize];
            let read = File::open(self.dir.join(WAL_FILE))
                .and_then(|mut file| {
                    file.seek(SeekFrom::Start(from))?;
                    file.read_exact(&mut bytes)
                })
                .io_context("read wal for replication");
            // Epoch re-check after the read: a checkpoint stores the new
            // epoch *before* truncating, so any truncation that could
            // have corrupted this read is visible here.
            let after = self.wal_position();
            if after.epoch != epoch {
                return Ok(WalFetch::Reposition { position: after });
            }
            read?; // unchanged epoch ⇒ durable bytes were readable
            return Ok(WalFetch::Data {
                bytes,
                position: after,
            });
        }
    }

    /// The newest snapshot on disk, as raw bytes, for follower
    /// bootstrap (decode with [`snapshot::decode_snapshot`], which
    /// verifies the schema fingerprint and the checksum). Retries if a
    /// concurrent checkpoint deletes the file mid-read — the listing
    /// only ever moves forward.
    pub fn latest_snapshot_bytes(&self) -> DurResult<(u64, Vec<u8>)> {
        loop {
            let Some((seq, path)) = snapshot::list_snapshots(&self.dir)?.into_iter().next() else {
                return Err(DurError::Corrupt {
                    message: format!("no snapshot in {}", self.dir.display()),
                });
            };
            match std::fs::read(&path) {
                Ok(bytes) => return Ok((seq, bytes)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(source) => {
                    return Err(DurError::Io {
                        context: format!("read {}", path.display()),
                        source,
                    })
                }
            }
        }
    }

    // Best-effort cleanup of snapshots older than `keep` and stray
    // temporaries — recovery only ever needs the newest valid snapshot.
    fn remove_stale_snapshots(&self, keep: u64) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = snapshot::parse_snapshot_name(name).is_some_and(|seq| seq < keep)
                || name.ends_with(".snap.tmp");
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> DurabilityStats {
        let (wal_bytes, last_commit_seq) = {
            let append = self.append.lock().unwrap_or_else(|e| e.into_inner());
            (append.wal_bytes, append.next_seq - 1)
        };
        let last_snapshot = self.last_snapshot_seq.load(Ordering::Relaxed);
        DurabilityStats {
            wal_bytes,
            commits_appended: self.commits_appended.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            records_replayed: self.commits_replayed,
            rows_replayed: self.rows_replayed,
            last_snapshot_seq: (last_snapshot != NO_SNAPSHOT).then_some(last_snapshot),
            last_commit_seq,
            poisoned: self.poisoned.load(Ordering::SeqCst),
        }
    }

    /// Convenience for tests and diagnostics: the WAL file path.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }
}

// One handle is shared by every committer and the checkpoint endpoint.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Durability>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rel::{Column, Schema, SqlType, Table, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn schema() -> Schema {
        let mut schema = Schema::new();
        schema
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("name", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        schema
    }

    fn fresh_db() -> Database {
        Database::new(schema()).unwrap()
    }

    fn scratch() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dur-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    // Run one committed transaction inserting `id` and persist it.
    fn commit_insert(db: &mut Database, durability: &Durability, id: i64) {
        db.begin().unwrap();
        db.insert("team", &[("id".to_owned(), Value::Int(id))])
            .unwrap();
        let ops = db.txn_ops().unwrap();
        let seq = durability.append_commit(&ops, None).unwrap();
        db.commit().unwrap();
        durability.sync_to(seq).unwrap();
    }

    #[test]
    fn fresh_dir_reopens_to_the_same_state() {
        let dir = scratch();
        let opened = Durability::open(&dir, fresh_db()).unwrap();
        let mut db = opened.db;
        let durability = opened.durability;
        assert_eq!(opened.report.commits_replayed, 0);
        for id in 1..=3 {
            commit_insert(&mut db, &durability, id);
        }
        drop(durability);

        let reopened = Durability::open(&dir, fresh_db()).unwrap();
        assert_eq!(reopened.report.commits_replayed, 3);
        assert_eq!(reopened.report.snapshot_seq, Some(0));
        assert_eq!(reopened.db.row_count("team").unwrap(), 3);
        let a: Vec<_> = db.scan("team").unwrap().collect();
        let b: Vec<_> = reopened.db.scan("team").unwrap().collect();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_and_recovery_prefers_it() {
        let dir = scratch();
        let opened = Durability::open(&dir, fresh_db()).unwrap();
        let mut db = opened.db;
        let durability = opened.durability;
        for id in 1..=2 {
            commit_insert(&mut db, &durability, id);
        }
        let seq = durability.checkpoint(&db).unwrap();
        assert_eq!(seq, 2);
        assert_eq!(
            durability.stats().wal_bytes,
            wal::WAL_MAGIC.len() as u64,
            "wal truncated by checkpoint"
        );
        commit_insert(&mut db, &durability, 3);
        drop(durability);

        let reopened = Durability::open(&dir, fresh_db()).unwrap();
        assert_eq!(reopened.report.snapshot_seq, Some(2));
        assert_eq!(reopened.report.commits_replayed, 1);
        assert_eq!(reopened.db.row_count("team").unwrap(), 3);
        // The stale snapshot-0 was cleaned up.
        assert_eq!(
            snapshot::list_snapshots(&dir).unwrap().len(),
            1,
            "only the newest snapshot remains"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_wal_file_is_refused() {
        let dir = scratch();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"definitely not a wal file").unwrap();
        assert!(matches!(
            Durability::open(&dir, fresh_db()),
            Err(DurError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_change_is_a_hard_error() {
        let dir = scratch();
        drop(Durability::open(&dir, fresh_db()).unwrap());
        let mut other = Schema::new();
        other
            .add_table(
                Table::builder("team")
                    .column(Column::new("id", SqlType::Integer).not_null())
                    .column(Column::new("renamed", SqlType::Varchar))
                    .primary_key(&["id"])
                    .build(),
            )
            .unwrap();
        assert!(matches!(
            Durability::open(&dir, Database::new(other).unwrap()),
            Err(DurError::SchemaMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_covers_later_waiters() {
        // Not a true concurrency test (those live in the workspace
        // suites); proves the bookkeeping: one sync_to covers every
        // commit appended before it.
        let dir = scratch();
        let opened = Durability::open(&dir, fresh_db()).unwrap();
        let mut db = opened.db;
        let durability = opened.durability;
        let mut seqs = Vec::new();
        for id in 1..=4 {
            db.begin().unwrap();
            db.insert("team", &[("id".to_owned(), Value::Int(id))])
                .unwrap();
            let ops = db.txn_ops().unwrap();
            seqs.push(durability.append_commit(&ops, None).unwrap());
            db.commit().unwrap();
        }
        durability.sync_to(*seqs.last().unwrap()).unwrap();
        for seq in seqs {
            durability.sync_to(seq).unwrap(); // all already covered
        }
        assert_eq!(durability.stats().wal_syncs, 1);
        assert_eq!(durability.stats().commits_appended, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fetch_wal_round_trips_committed_units() {
        let dir = scratch();
        let opened = Durability::open(&dir, fresh_db()).unwrap();
        let mut db = opened.db;
        let durability = opened.durability;
        for id in 1..=3 {
            commit_insert(&mut db, &durability, id);
        }

        // Bootstrap exactly as a follower would: newest snapshot bytes,
        // decoded (fingerprint + checksum checked), dictionary adopted.
        let (snap_seq, snap_bytes) = durability.latest_snapshot_bytes().unwrap();
        assert_eq!(snap_seq, 0, "fresh dir checkpoints the base as snapshot-0");
        let (decoded_seq, mut replica, mut dict) =
            snapshot::decode_snapshot(&snap_bytes, db.schema()).unwrap();
        assert_eq!(decoded_seq, 0);

        let position = durability.wal_position();
        assert_eq!(position.epoch, 0);
        assert_eq!(position.durable_seq, 3);
        let fetched = durability
            .fetch_wal(wal::WAL_MAGIC.len() as u64, position.epoch, Duration::ZERO)
            .unwrap();
        let WalFetch::Data { bytes, position } = fetched else {
            panic!("expected data, got {fetched:?}");
        };
        assert_eq!(
            wal::WAL_MAGIC.len() as u64 + bytes.len() as u64,
            position.durable_bytes,
            "everything durable arrives in one small fetch"
        );
        let scan = wal::scan_records(&bytes, &mut dict);
        assert_eq!(scan.units.len(), 3);
        for unit in &scan.units {
            for op in &unit.ops {
                replica.apply_logical(op).unwrap();
            }
        }
        let a: Vec<_> = db.scan("team").unwrap().collect();
        let b: Vec<_> = replica.scan("team").unwrap().collect();
        assert_eq!(a, b, "replayed follower equals the leader heap");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fetch_wal_serves_only_synced_bytes() {
        let dir = scratch();
        let opened = Durability::open(&dir, fresh_db()).unwrap();
        let mut db = opened.db;
        let durability = opened.durability;
        let edge = durability.wal_position().durable_bytes;

        // Appended but not fsynced: the durable edge must not move.
        db.begin().unwrap();
        db.insert("team", &[("id".to_owned(), Value::Int(1))])
            .unwrap();
        let ops = db.txn_ops().unwrap();
        let seq = durability.append_commit(&ops, None).unwrap();
        db.commit().unwrap();
        let fetched = durability
            .fetch_wal(edge, 0, Duration::from_millis(5))
            .unwrap();
        assert!(
            matches!(fetched, WalFetch::CaughtUp { position } if position.durable_bytes == edge),
            "unsynced bytes must not be served"
        );

        durability.sync_to(seq).unwrap();
        let fetched = durability.fetch_wal(edge, 0, Duration::ZERO).unwrap();
        assert!(
            matches!(&fetched, WalFetch::Data { bytes, .. } if !bytes.is_empty()),
            "after fsync the same poll returns data: {fetched:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fetch_wal_repositions_across_checkpoint_and_range_errors() {
        let dir = scratch();
        let opened = Durability::open(&dir, fresh_db()).unwrap();
        let mut db = opened.db;
        let durability = opened.durability;
        for id in 1..=2 {
            commit_insert(&mut db, &durability, id);
        }
        let before = durability.wal_position();

        // Offsets outside [magic, durable] are never served.
        for bad in [0u64, before.durable_bytes + 1] {
            assert!(matches!(
                durability
                    .fetch_wal(bad, before.epoch, Duration::ZERO)
                    .unwrap(),
                WalFetch::Reposition { .. }
            ));
        }

        // A checkpoint truncates the log: the old coordinate becomes a
        // reposition pointing at the new epoch's empty log.
        durability.checkpoint(&db).unwrap();
        let fetched = durability
            .fetch_wal(before.durable_bytes, before.epoch, Duration::ZERO)
            .unwrap();
        let WalFetch::Reposition { position } = fetched else {
            panic!("stale epoch must reposition, got {fetched:?}");
        };
        assert_eq!(position.epoch, 2);
        assert_eq!(position.snapshot_seq, Some(2));
        assert_eq!(position.durable_bytes, wal::WAL_MAGIC.len() as u64);

        // The new coordinate long-polls clean.
        assert!(matches!(
            durability
                .fetch_wal(
                    position.durable_bytes,
                    position.epoch,
                    Duration::from_millis(5)
                )
                .unwrap(),
            WalFetch::CaughtUp { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
