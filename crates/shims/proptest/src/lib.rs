//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so this in-workspace
//! crate provides the subset of the proptest API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `boxed`, strategies for ranges, tuples, string
//! regexes (a character-class subset), `Just`, `any`, `option::of`,
//! `collection::vec`, the [`proptest!`] test macro, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs verbatim), and the regex strategy supports only sequences of
//! character classes with `{n}` / `{n,m}` repetition — exactly the
//! patterns used in this repository.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Failure of one generated test case (returned by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count (`PROPTEST_CASES` env var overrides).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A generator for `(test name, case index)` — deterministic across
    /// runs so failures are reproducible.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Reject generated values failing `pred` (re-draws, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            pred,
            reason,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy alias used by [`prop_oneof!`].
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe mirror of [`Strategy`].
pub trait DynStrategy<T> {
    /// Draw one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    pred: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive draws",
            self.reason
        );
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies ([`prop_oneof!`]).
pub struct Union<T> {
    /// The candidate strategies.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical [`Strategy`] ([`any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Function-backed strategy used by [`Arbitrary`] impls.
pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for i64 {
    type Strategy = FnStrategy<i64>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u64() as i64)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// Ranges are strategies (uniform draw).
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, usize, u32, i32);

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ----------------------------------------------------------------------
// Regex-subset string strategy
// ----------------------------------------------------------------------

// One atom of the pattern: the characters it may produce and its
// repetition bounds.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                + i;
            let body = &chars[i + 1..close];
            i = close + 1;
            let mut set = Vec::new();
            let mut j = 0;
            while j < body.len() {
                if j + 2 < body.len() && body[j + 1] == '-' {
                    let (lo, hi) = (body[j], body[j + 2]);
                    assert!(lo <= hi, "bad range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter(|c| c.is_ascii() || lo > '\u{7f}'));
                    j += 3;
                } else {
                    set.push(body[j]);
                    j += 1;
                }
            }
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("repetition lower bound"),
                    hi.parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.choices[rng.below(atom.choices.len())]);
            }
        }
        out
    }
}

// ----------------------------------------------------------------------
// Combinator modules
// ----------------------------------------------------------------------

/// Strategies over `Option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` or `Some(inner)` with equal weight on `None` as upstream
    /// (upstream defaults to 50% `Some`; exact weight is immaterial
    /// for these tests).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Strategy producing `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of `size` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let n = self.size.start + if span == 0 { 0 } else { rng.below(span) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    /// Upstream re-exports `proptest` itself in the prelude.
    pub use crate as proptest;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ----------------------------------------------------------------------
// Macros
// ----------------------------------------------------------------------

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    };
}

/// Assert inside a proptest body (returns `Err` instead of panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Define property tests: each `name in strategy` argument is drawn
/// fresh per case; the body may use `prop_assert*` and `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.effective_cases();
            for case in 0..u64::from(cases) {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} of {} failed: {e}\ninputs: {inputs}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Za-z][A-Za-z0-9]{0,11}", &mut rng);
            assert!((1..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
            let printable = Strategy::generate(&"[ -~]{0,16}", &mut rng);
            assert!(printable.len() <= 16);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        let s = (0i64..100, "[a-z]{2}");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_and_asserts(x in 0i64..50, flag in any::<bool>(), s in "[a-z]{1,4}") {
            prop_assert!((0..50).contains(&x));
            prop_assert_eq!(s.len(), s.chars().count());
            if flag {
                return Ok(());
            }
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn combinators_compose(
            v in proptest::collection::vec(prop_oneof![Just(1u64), 2u64..5], 0..8),
            o in proptest::option::of("[A-Z]"),
        ) {
            prop_assert!(v.iter().all(|&x| x < 5));
            if let Some(s) = o {
                prop_assert_eq!(s.len(), 1);
            }
        }
    }
}
