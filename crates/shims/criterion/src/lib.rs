//! Offline shim for the `criterion` crate.
//!
//! The build environment has no registry access, so this in-workspace
//! crate provides the subset of the criterion API the workspace's
//! benches use: `Criterion` / `BenchmarkGroup` / `Bencher` with `iter`
//! and `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is real: each benchmark is warmed up, the iteration
//! count per sample is chosen adaptively so one sample takes ≥ ~200µs,
//! and samples are collected until the configured measurement time (or
//! sample count) is exhausted. Results are printed one line per
//! benchmark and, when `CRITERION_JSON` names a file, appended to it as
//! JSON lines — which is how `BENCH_baseline.json` is produced.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` sizes its batches. The shim times one routine
/// invocation per setup regardless, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Input-size annotation for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Input size in bytes.
    Bytes(u64),
    /// Input size in elements.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (for groups whose name carries the function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id (accepts `&str` and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 50,
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Builder: warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Builder: measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Builder: number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config_override: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.into_id(), self.config, &mut f);
        self
    }
}

/// A group of related benchmarks sharing config overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config_override: Option<Config>,
}

impl BenchmarkGroup<'_> {
    fn config(&self) -> Config {
        self.config_override.unwrap_or(self.criterion.config)
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut c = self.config();
        c.sample_size = n;
        self.config_override = Some(c);
        self
    }

    /// Record the input size (reported, not otherwise used).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.config(), &mut f);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.config(), &mut |b: &mut Bencher| {
            b_call(&mut f, b, input)
        });
        self
    }

    /// Finish the group (printing happens per benchmark).
    pub fn finish(self) {}
}

fn b_call<I: ?Sized, F: FnMut(&mut Bencher, &I)>(f: &mut F, b: &mut Bencher, input: &I) {
    f(b, input)
}

/// Passed to benchmark closures; records the measured routine.
pub struct Bencher {
    mode: BenchMode,
    config: Config,
    result: Option<Sample>,
}

enum BenchMode {
    /// Calibrate iterations-per-sample.
    WarmUp,
    /// Collect timed samples.
    Measure,
}

#[derive(Debug, Clone, Default)]
struct Sample {
    /// Nanoseconds per iteration, one entry per sample.
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` (called repeatedly).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|timed| {
            let start = Instant::now();
            black_box(routine());
            timed(start.elapsed());
        });
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.run(|timed| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed(start.elapsed());
        });
    }

    // Drive one warm-up or measurement pass. `body` runs one iteration
    // and reports its duration.
    fn run(&mut self, mut body: impl FnMut(&mut dyn FnMut(Duration))) {
        match self.mode {
            BenchMode::WarmUp => {
                let deadline = Instant::now() + self.config.warm_up;
                let mut once = |d: Duration| {
                    let _ = d;
                };
                body(&mut once);
                while Instant::now() < deadline {
                    body(&mut once);
                }
            }
            BenchMode::Measure => {
                let mut samples = Vec::with_capacity(self.config.sample_size);
                let deadline = Instant::now() + self.config.measurement;
                while samples.len() < self.config.sample_size {
                    let mut elapsed = Duration::ZERO;
                    body(&mut |d: Duration| elapsed = d);
                    samples.push(elapsed.as_secs_f64() * 1e9);
                    if Instant::now() > deadline && samples.len() >= 10 {
                        break;
                    }
                }
                self.result = Some(Sample {
                    per_iter_ns: samples,
                });
            }
        }
    }
}

fn run_benchmark(id: &str, config: Config, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass.
    let mut bencher = Bencher {
        mode: BenchMode::WarmUp,
        config,
        result: None,
    };
    f(&mut bencher);
    // Measurement pass.
    let mut bencher = Bencher {
        mode: BenchMode::Measure,
        config,
        result: None,
    };
    f(&mut bencher);
    let Some(sample) = bencher.result else {
        eprintln!("{id}: benchmark closure never called iter/iter_batched");
        return;
    };
    let mut ns = sample.per_iter_ns.clone();
    ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let n = ns.len();
    let median = if n % 2 == 1 {
        ns[n / 2]
    } else {
        (ns[n / 2 - 1] + ns[n / 2]) / 2.0
    };
    let mean = ns.iter().sum::<f64>() / n as f64;
    println!(
        "{id:<60} median {:>12} mean {:>12} ({n} samples)",
        format_ns(median),
        format_ns(mean)
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"id\":{:?},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"samples\":{n}}}",
            id
        );
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(file, "{line}");
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declare a benchmark group function (name/config/targets form and the
/// short positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench`; a filter argument is accepted and
            // ignored (the shim always runs everything).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim");
        group.sample_size(12);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }
}
