//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this in-workspace
//! crate provides the exact subset of the rand 0.8 API the workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen`, `gen_bool`, and `gen_range`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed,
//! which is all the fixtures and tests rely on (they never assume
//! upstream rand's exact stream).

#![warn(missing_docs)]

pub mod rngs {
    //! Concrete generator types.

    /// A deterministic pseudo-random generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Core random-value interface (subset: `gen`, `gen_bool`, `gen_range`).
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// A uniform draw from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Types samplable without parameters (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Types samplable from a `Range` (subset of `SampleUniform`).
pub trait SampleRange: Sized {
    /// Draw uniformly from `range` (must be non-empty).
    fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "hits = {hits}");
    }
}
