//! Replication: WAL shipping from one durable leader to read replicas.
//!
//! The paper's mediator is a single-writer system — every update
//! funnels through one [`ontoaccess::Mediator`] so the semantic checks
//! of Algorithm 1 see a consistent database. This crate scales *reads*
//! without giving that up: one **leader** owns the data directory and
//! the write path; any number of **followers** bootstrap from the
//! leader's newest snapshot and then tail its write-ahead log over
//! HTTP, replaying each committed transaction through the same
//! [`rel::apply_logical`] path recovery uses. A follower is therefore
//! byte-identical to a leader that crashed and recovered at the same
//! commit — replication *is* continuous remote recovery.
//!
//! # Protocol
//!
//! Two leader endpoints (served by `ontoaccess-server`):
//!
//! * `GET /snapshot/latest` — the newest snapshot file, verbatim.
//!   Headers carry its commit seq and the current WAL epoch.
//! * `GET /wal?from=<abs-offset>&epoch=<e>&timeout_ms=<t>` — committed
//!   WAL bytes starting at the absolute file offset `from`. Only
//!   fsync-acknowledged bytes are ever served (never the torn tail), so
//!   whatever a follower applies is durable on the leader. When the
//!   follower is caught up the leader parks the request (long-poll)
//!   until new bytes commit or the timeout lapses. A checkpoint
//!   truncates the WAL and bumps its **epoch**; requests carrying a
//!   stale epoch are answered `409` with the new coordinates, and the
//!   follower either adopts them (its applied state already covers the
//!   new snapshot) or re-bootstraps.
//!
//! # Divergence contract
//!
//! A follower never silently diverges. Network errors are retried with
//! capped exponential backoff; everything that could make the replica's
//! state differ from the leader's — a snapshot that fails its schema
//! fingerprint or CRC, a WAL suffix that does not scan as commit
//! units, a replay error — is a hard failure: the tail thread stops in
//! the `failed` state and keeps the last consistent version serving.

// `OntoResult` is the workspace-wide error surface; its size is core's
// concern (core allows the same lint), not worth boxing at this layer.
#![allow(clippy::result_large_err)]

pub mod client;

pub use client::{LeaderClient, LeaderResponse};

use dur::codec::DictTable;
use dur::wal::WAL_MAGIC;
use ontoaccess::{Mediator, OntoError, OntoResult};
use r3m::Mapping;
use rel::{Database, Schema};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Replicator`].
#[derive(Debug, Clone)]
pub struct ReplicatorConfig {
    /// Long-poll timeout sent to the leader's `/wal` endpoint. The
    /// client-side read timeout is this plus a fixed margin.
    pub poll_timeout: Duration,
    /// First reconnect delay after a network error.
    pub backoff_initial: Duration,
    /// Reconnect delay cap (doubling backoff saturates here).
    pub backoff_max: Duration,
    /// How long the initial bootstrap keeps retrying before
    /// [`Replicator::start`] gives up and returns an error.
    pub bootstrap_timeout: Duration,
    /// Test hook: sleep this long before applying each commit unit,
    /// so tests can observe a lagging follower deterministically.
    /// Zero (the default) applies at full speed.
    pub throttle_apply: Duration,
}

impl Default for ReplicatorConfig {
    fn default() -> Self {
        ReplicatorConfig {
            poll_timeout: Duration::from_secs(10),
            backoff_initial: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            bootstrap_timeout: Duration::from_secs(30),
            throttle_apply: Duration::ZERO,
        }
    }
}

/// Lifecycle state of the tail thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplState {
    /// Fetching and decoding the leader's snapshot.
    Bootstrapping,
    /// Connected and applying (or caught up and long-polling).
    Streaming,
    /// Lost the leader; retrying with backoff. Reads keep serving the
    /// last applied version.
    Reconnecting,
    /// Hard error (corruption, fingerprint mismatch, replay failure):
    /// replication stopped rather than risk divergence. The replica
    /// keeps serving its last consistent version.
    Failed,
    /// Shut down via [`Replicator::stop`].
    Stopped,
}

impl ReplState {
    /// Stable lowercase name for wire formats.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplState::Bootstrapping => "bootstrapping",
            ReplState::Streaming => "streaming",
            ReplState::Reconnecting => "reconnecting",
            ReplState::Failed => "failed",
            ReplState::Stopped => "stopped",
        }
    }
}

#[derive(Debug)]
struct StatusInner {
    leader: String,
    applied_seq: AtomicU64,
    leader_seq: AtomicU64,
    /// Leader's durable WAL extent (absolute bytes) from the last
    /// contact.
    leader_wal_bytes: AtomicU64,
    /// Absolute offset up to which this follower has consumed the WAL.
    applied_bytes: AtomicU64,
    reconnects: AtomicU64,
    slow: Mutex<SlowStatus>,
}

#[derive(Debug)]
struct SlowStatus {
    state: ReplState,
    last_contact: Option<Instant>,
    last_error: Option<String>,
}

/// Shared, cheaply clonable view of a replicator's progress. The
/// server embeds one in `/status`; tests poll it for convergence.
#[derive(Debug, Clone)]
pub struct ReplicationStatus {
    inner: Arc<StatusInner>,
}

/// Point-in-time copy of everything [`ReplicationStatus`] tracks.
#[derive(Debug, Clone)]
pub struct ReplicationSnapshot {
    /// Leader address this follower replicates from.
    pub leader: String,
    /// Tail-thread state.
    pub state: ReplState,
    /// Highest commit seq applied locally.
    pub applied_seq: u64,
    /// Leader's last known commit seq.
    pub leader_seq: u64,
    /// Commits the leader has durably logged but we have not applied.
    pub lag_units: u64,
    /// Durable WAL bytes we have not yet consumed.
    pub lag_bytes: u64,
    /// Milliseconds since the last successful leader response, if any.
    pub last_contact_ms: Option<u64>,
    /// Times the connection was re-established after a failure.
    pub reconnects: u64,
    /// Last error message (transient or fatal), if any.
    pub last_error: Option<String>,
}

impl ReplicationStatus {
    fn new(leader: String) -> ReplicationStatus {
        ReplicationStatus {
            inner: Arc::new(StatusInner {
                leader,
                applied_seq: AtomicU64::new(0),
                leader_seq: AtomicU64::new(0),
                leader_wal_bytes: AtomicU64::new(0),
                applied_bytes: AtomicU64::new(WAL_MAGIC.len() as u64),
                reconnects: AtomicU64::new(0),
                slow: Mutex::new(SlowStatus {
                    state: ReplState::Bootstrapping,
                    last_contact: None,
                    last_error: None,
                }),
            }),
        }
    }

    /// Snapshot every tracked quantity at once.
    pub fn snapshot(&self) -> ReplicationSnapshot {
        let (state, last_contact_ms, last_error) = {
            let slow = self.inner.slow.lock().unwrap_or_else(|e| e.into_inner());
            (
                slow.state,
                slow.last_contact
                    .map(|t| t.elapsed().as_millis().min(u64::MAX as u128) as u64),
                slow.last_error.clone(),
            )
        };
        let applied_seq = self.inner.applied_seq.load(Ordering::Acquire);
        let leader_seq = self.inner.leader_seq.load(Ordering::Acquire);
        let applied_bytes = self.inner.applied_bytes.load(Ordering::Acquire);
        let leader_wal_bytes = self.inner.leader_wal_bytes.load(Ordering::Acquire);
        ReplicationSnapshot {
            leader: self.inner.leader.clone(),
            state,
            applied_seq,
            leader_seq,
            lag_units: leader_seq.saturating_sub(applied_seq),
            lag_bytes: leader_wal_bytes.saturating_sub(applied_bytes),
            last_contact_ms,
            reconnects: self.inner.reconnects.load(Ordering::Acquire),
            last_error,
        }
    }

    /// Leader address this follower replicates from.
    pub fn leader(&self) -> &str {
        &self.inner.leader
    }

    fn set_state(&self, state: ReplState) {
        let mut slow = self.inner.slow.lock().unwrap_or_else(|e| e.into_inner());
        // A hard failure is terminal (except for explicit stop).
        if slow.state != ReplState::Failed || state == ReplState::Stopped {
            slow.state = state;
        }
    }

    fn note_error(&self, message: String) {
        let mut slow = self.inner.slow.lock().unwrap_or_else(|e| e.into_inner());
        slow.last_error = Some(message);
    }

    fn fail(&self, message: String) {
        let mut slow = self.inner.slow.lock().unwrap_or_else(|e| e.into_inner());
        slow.state = ReplState::Failed;
        slow.last_error = Some(message);
    }

    fn touch_contact(&self) {
        let mut slow = self.inner.slow.lock().unwrap_or_else(|e| e.into_inner());
        slow.last_contact = Some(Instant::now());
    }
}

/// Interruptible sleep: `stop()` wakes every sleeper immediately.
#[derive(Debug, Default)]
struct StopSignal {
    stopped: Mutex<bool>,
    wake: Condvar,
}

impl StopSignal {
    fn set(&self) {
        *self.stopped.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.wake.notify_all();
    }

    fn is_set(&self) -> bool {
        *self.stopped.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sleep up to `d`; returns `true` if stop was signalled.
    fn sleep(&self, d: Duration) -> bool {
        let deadline = Instant::now() + d;
        let mut stopped = self.stopped.lock().unwrap_or_else(|e| e.into_inner());
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .wake
                .wait_timeout(stopped, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            stopped = guard;
        }
        true
    }
}

/// Handle to a running replication tail. Keep it alive for as long as
/// the replica should follow the leader; [`Replicator::stop`] (or
/// dropping it) ends the tail.
#[derive(Debug)]
pub struct Replicator {
    status: ReplicationStatus,
    stop: Arc<StopSignal>,
    thread: Option<JoinHandle<()>>,
}

impl Replicator {
    /// Bootstrap a read replica of `leader` and start tailing its WAL.
    ///
    /// `initial` supplies the schema the leader's snapshots must match
    /// (its data is discarded — the snapshot's rows win); `mapping` is
    /// the same R3M mapping the leader serves. Blocks until the
    /// bootstrap snapshot is fetched, verified, and installed (retrying
    /// network errors up to `config.bootstrap_timeout`), then spawns
    /// the tail thread and returns the read-only [`Mediator`] plus
    /// this handle.
    pub fn start(
        leader: impl Into<String>,
        initial: Database,
        mapping: Mapping,
        config: ReplicatorConfig,
    ) -> OntoResult<(Mediator, Replicator)> {
        let leader = leader.into();
        let schema = initial.schema().clone();
        let status = ReplicationStatus::new(leader.clone());
        let stop = Arc::new(StopSignal::default());
        let mut client = LeaderClient::new(leader.clone());

        // Synchronous bootstrap with backoff: the caller gets either a
        // consistent replica or an error, never a half-installed one.
        let deadline = Instant::now() + config.bootstrap_timeout;
        let mut backoff = config.backoff_initial;
        let (snap_seq, db, dict) = loop {
            match fetch_snapshot(&mut client, &schema) {
                Ok(bootstrap) => break bootstrap,
                Err(TailError::Fatal(message)) => {
                    return Err(OntoError::Storage {
                        message: format!("bootstrap from {leader} failed: {message}"),
                    });
                }
                Err(TailError::Retryable(message)) => {
                    if Instant::now() + backoff >= deadline {
                        return Err(OntoError::Storage {
                            message: format!(
                                "bootstrap from {leader} timed out after {:?}: {message}",
                                config.bootstrap_timeout
                            ),
                        });
                    }
                    status.note_error(message);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(config.backoff_max);
                }
            }
        };

        let mediator = Mediator::new_replica(db, mapping, leader, snap_seq)?;
        status.inner.applied_seq.store(snap_seq, Ordering::Release);
        status.inner.leader_seq.store(snap_seq, Ordering::Release);
        status.set_state(ReplState::Streaming);

        let tail = Tail {
            mediator: mediator.clone(),
            client,
            schema,
            status: status.clone(),
            stop: Arc::clone(&stop),
            config,
            dict,
            // Epoch invariant: the leader's WAL epoch always equals its
            // newest snapshot's seq, so the bootstrap snapshot tells us
            // the epoch to tail under.
            epoch: snap_seq,
            applied: snap_seq,
            consumed_edge: WAL_MAGIC.len() as u64,
            buffer: Vec::new(),
        };
        let thread = std::thread::Builder::new()
            .name("repl-tail".into())
            .spawn(move || tail.run())
            .map_err(|e| OntoError::Storage {
                message: format!("cannot spawn replication thread: {e}"),
            })?;

        Ok((
            mediator,
            Replicator {
                status,
                stop,
                thread: Some(thread),
            },
        ))
    }

    /// The shared progress handle (clone it into server config).
    pub fn status(&self) -> ReplicationStatus {
        self.status.clone()
    }

    /// Signal the tail thread and wait for it to exit. Waits at most
    /// one long-poll round trip.
    pub fn stop(mut self) {
        self.stop.set();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.status.set_state(ReplState::Stopped);
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        // Signal but do not join: dropping must not block for a
        // long-poll round trip. The detached thread exits on its own.
        self.stop.set();
    }
}

/// Errors inside the tail loop, split by the divergence contract:
/// retryable faults back off and reconnect, fatal ones stop the tail.
enum TailError {
    Retryable(String),
    Fatal(String),
}

// Process-global replication metrics (lag gauges are sampled from
// [`ReplicationStatus`] at scrape time by the server's `/metrics`).
struct ReplMetrics {
    fetch_rtt: &'static obs::Histogram,
    reconnects: &'static obs::Counter,
}

fn metrics() -> &'static ReplMetrics {
    static METRICS: std::sync::OnceLock<ReplMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = obs::registry();
        ReplMetrics {
            fetch_rtt: registry.latency_histogram(
                "ontoaccess_repl_fetch_seconds",
                "Round-trip time of follower WAL fetches (includes leader long-poll wait)",
            ),
            reconnects: registry.counter(
                "ontoaccess_repl_reconnects_total",
                "Times the follower lost its leader connection and began reconnecting",
            ),
        }
    })
}

/// Fetch and verify the leader's newest snapshot.
fn fetch_snapshot(
    client: &mut LeaderClient,
    schema: &Schema,
) -> Result<(u64, Database, DictTable), TailError> {
    let response = client
        .get("/snapshot/latest", Duration::from_secs(30))
        .map_err(|e| TailError::Retryable(format!("snapshot fetch: {e}")))?;
    match response.status {
        200 => {
            // Fingerprint or CRC mismatch is fatal: applying a foreign
            // snapshot is exactly the silent divergence we refuse.
            let (seq, db, dict) = dur::snapshot::decode_snapshot(&response.body, schema)
                .map_err(|e| TailError::Fatal(format!("snapshot rejected: {e}")))?;
            Ok((seq, db, dict))
        }
        501 => Err(TailError::Fatal(
            "leader serves no snapshots (not durable, or itself a replica)".into(),
        )),
        status => Err(TailError::Retryable(format!(
            "snapshot fetch: leader answered {status}"
        ))),
    }
}

/// The tail thread's whole mutable state.
struct Tail {
    mediator: Mediator,
    client: LeaderClient,
    schema: Schema,
    status: ReplicationStatus,
    stop: Arc<StopSignal>,
    config: ReplicatorConfig,
    /// Live dictionary, kept in lockstep with the leader's via the
    /// deltas each scanned unit carries.
    dict: DictTable,
    /// WAL epoch (== the leader snapshot seq we bootstrapped from).
    epoch: u64,
    /// Highest commit seq applied locally.
    applied: u64,
    /// Absolute offset of the first unconsumed WAL byte (everything
    /// before it has been applied and dropped).
    consumed_edge: u64,
    /// Fetched-but-unconsumed bytes starting at `consumed_edge` — a
    /// fetch chunk may end mid-unit, so the tail is carried over.
    buffer: Vec<u8>,
}

impl Tail {
    // Terminal failure: log the replication coordinates (the operator's
    // starting point for diagnosis) and latch the failed state.
    fn fail(&self, message: String) {
        let offset = self.consumed_edge + self.buffer.len() as u64;
        obs::log(
            obs::Level::Error,
            "repl",
            "replication failed",
            &[
                ("leader", &self.client.leader()),
                ("epoch", &self.epoch),
                ("offset", &offset),
                ("error", &message),
            ],
        );
        self.status.fail(message);
    }

    fn run(mut self) {
        let mut backoff = self.config.backoff_initial;
        let mut connected = true;
        let read_margin = Duration::from_secs(10);
        loop {
            if self.stop.is_set() {
                return;
            }
            let from = self.consumed_edge + self.buffer.len() as u64;
            let path = format!(
                "/wal?from={from}&epoch={}&timeout_ms={}",
                self.epoch,
                self.config.poll_timeout.as_millis()
            );
            // Each fetch runs under its own trace, keyed by the request
            // id the leader also sees (`X-Request-Id` on the wire), so
            // leader-side logs stitch to the follower poll that caused
            // them. Only data-carrying fetches are worth a store slot;
            // caught-up polls and connection errors are discarded
            // (logged and counted elsewhere).
            let request_id = obs::next_request_id();
            let fetch_trace = obs::trace::start(&request_id, "repl.fetch");
            fetch_trace.attr_str("leader", self.client.leader());
            fetch_trace.attr_u64("epoch", self.epoch);
            fetch_trace.attr_u64("from", from);
            let fetch_started = Instant::now();
            let response = match self.client.get_with_request_id(
                &path,
                self.config.poll_timeout + read_margin,
                &request_id,
            ) {
                Ok(response) => {
                    metrics()
                        .fetch_rtt
                        .observe_duration(fetch_started.elapsed());
                    response
                }
                Err(e) => {
                    fetch_trace.discard();
                    if connected {
                        self.status.inner.reconnects.fetch_add(1, Ordering::AcqRel);
                        metrics().reconnects.inc();
                        connected = false;
                    }
                    obs::log(
                        obs::Level::Warn,
                        "repl",
                        "leader unreachable, reconnecting",
                        &[
                            ("leader", &self.client.leader()),
                            ("epoch", &self.epoch),
                            ("offset", &from),
                            ("error", &e),
                        ],
                    );
                    self.status.set_state(ReplState::Reconnecting);
                    self.status.note_error(format!("leader unreachable: {e}"));
                    if self.stop.sleep(backoff) {
                        return;
                    }
                    backoff = (backoff * 2).min(self.config.backoff_max);
                    continue;
                }
            };
            self.status.touch_contact();
            fetch_trace.attr_u64("status", response.status as u64);
            fetch_trace.attr_u64("bytes", response.body.len() as u64);
            if response.status == 200 && !response.body.is_empty() {
                fetch_trace.finish();
            } else {
                fetch_trace.discard();
            }
            match response.status {
                200 => {
                    connected = true;
                    backoff = self.config.backoff_initial;
                    self.status.set_state(ReplState::Streaming);
                    if let Err(fatal) = self.ingest(&response) {
                        self.fail(fatal);
                        return;
                    }
                }
                409 => {
                    // Reposition: a checkpoint truncated the WAL. If our
                    // applied state already covers the new snapshot we
                    // just adopt the new coordinates; otherwise we fell
                    // behind the truncation and must re-bootstrap.
                    connected = true;
                    backoff = self.config.backoff_initial;
                    let new_epoch = response.header_u64("x-wal-epoch");
                    let snapshot_seq = response.header_u64("x-snapshot-seq");
                    match (new_epoch, snapshot_seq) {
                        (Some(epoch), Some(snap)) if self.applied >= snap => {
                            self.epoch = epoch;
                            self.consumed_edge = WAL_MAGIC.len() as u64;
                            self.buffer.clear();
                            self.status
                                .inner
                                .applied_bytes
                                .store(self.consumed_edge, Ordering::Release);
                        }
                        _ => match self.rebootstrap() {
                            Ok(()) => {}
                            Err(TailError::Fatal(message)) => {
                                self.fail(message);
                                return;
                            }
                            Err(TailError::Retryable(message)) => {
                                self.status.note_error(message);
                                if self.stop.sleep(backoff) {
                                    return;
                                }
                                backoff = (backoff * 2).min(self.config.backoff_max);
                            }
                        },
                    }
                }
                501 => {
                    // The leader has no WAL to ship — it is not durable
                    // (or itself a replica). That cannot heal by retry.
                    self.fail(
                        "leader does not ship a WAL (not durable, or itself a replica)".into(),
                    );
                    return;
                }
                status => {
                    // Transient server-side condition (overload, restart
                    // in progress): back off like a network error.
                    self.status
                        .note_error(format!("wal fetch: leader answered {status}"));
                    if self.stop.sleep(backoff) {
                        return;
                    }
                    backoff = (backoff * 2).min(self.config.backoff_max);
                }
            }
        }
    }

    /// Consume one successful `/wal` response: buffer the bytes, scan
    /// complete commit units, apply the new ones, and drop what was
    /// consumed. Returns the fatal-failure message on divergence.
    fn ingest(&mut self, response: &LeaderResponse) -> Result<(), String> {
        if let Some(seq) = response.header_u64("x-leader-seq") {
            self.status.inner.leader_seq.store(seq, Ordering::Release);
        }
        let leader_extent = response.header_u64("x-wal-size");
        if let Some(extent) = leader_extent {
            self.status
                .inner
                .leader_wal_bytes
                .store(extent, Ordering::Release);
        }
        if response.body.is_empty() {
            return Ok(()); // caught up; the long poll timed out
        }
        self.buffer.extend_from_slice(&response.body);

        // Scan the whole buffer each round. The scan rolls torn units'
        // dictionary deltas back, so re-scanning a carried-over tail
        // leaves `dict` exactly at the committed frontier.
        let scan = dur::wal::scan_records(&self.buffer, &mut self.dict);
        let consumed = (scan.durable_end - WAL_MAGIC.len() as u64) as usize;
        for unit in &scan.units {
            if self.stop.is_set() {
                return Ok(());
            }
            if unit.seq <= self.applied {
                continue; // already covered by the bootstrap snapshot
            }
            if !self.config.throttle_apply.is_zero() && self.stop.sleep(self.config.throttle_apply)
            {
                return Ok(());
            }
            // A unit stamped with a trace id gets an apply trace under
            // the *same* key, so `GET /trace/<request-id>` on this
            // replica links the leader-side write to its local apply —
            // the cross-node half of the trace.
            let apply_trace = unit.trace_id.as_deref().map(|id| {
                let trace = obs::trace::start(id, "repl.apply");
                trace.attr_u64("leader_seq", unit.seq);
                trace.attr_u64("epoch", self.epoch);
                trace.attr_str("leader", self.client.leader());
                trace.attr_u64("ops", unit.ops.len() as u64);
                trace
            });
            if let Err(e) = self.mediator.apply_replicated(unit.seq, &unit.ops) {
                // Drop glue submits the trace as an error trace
                // (priority retention) on the way out.
                obs::trace::mark_error();
                return Err(format!("replay of commit {} failed: {e}", unit.seq));
            }
            drop(apply_trace);
            self.applied = unit.seq;
            self.status
                .inner
                .applied_seq
                .store(unit.seq, Ordering::Release);
        }
        self.buffer.drain(..consumed);
        self.consumed_edge += consumed as u64;
        self.status
            .inner
            .applied_bytes
            .store(self.consumed_edge, Ordering::Release);

        // A leftover tail is normal while a unit is split across fetch
        // chunks — but if the leader says we already hold every durable
        // byte and the tail still does not scan, the stream is corrupt.
        if !self.buffer.is_empty()
            && leader_extent == Some(self.consumed_edge + self.buffer.len() as u64)
        {
            return Err(format!(
                "wal stream corrupt at offset {}: {} durable byte(s) do not scan as commit units",
                self.consumed_edge,
                self.buffer.len()
            ));
        }
        Ok(())
    }

    /// Full re-bootstrap after falling behind a checkpoint: fetch the
    /// newest snapshot and swap it in wholesale.
    fn rebootstrap(&mut self) -> Result<(), TailError> {
        let (snap_seq, db, dict) = fetch_snapshot(&mut self.client, &self.schema)?;
        if snap_seq <= self.applied {
            // The snapshot does not advance us (raced another
            // checkpoint, or the 409 was spurious); adopt coordinates
            // on the next poll instead of regressing the version chain.
            return Ok(());
        }
        self.mediator
            .install_replica_base(db, snap_seq)
            .map_err(|e| TailError::Fatal(format!("installing snapshot {snap_seq}: {e}")))?;
        self.dict = dict;
        self.epoch = snap_seq;
        self.applied = snap_seq;
        self.consumed_edge = WAL_MAGIC.len() as u64;
        self.buffer.clear();
        self.status
            .inner
            .applied_seq
            .store(snap_seq, Ordering::Release);
        self.status
            .inner
            .applied_bytes
            .store(self.consumed_edge, Ordering::Release);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_snapshot_reports_lag_and_state() {
        let status = ReplicationStatus::new("127.0.0.1:9999".into());
        status.inner.applied_seq.store(3, Ordering::Release);
        status.inner.leader_seq.store(7, Ordering::Release);
        status.inner.applied_bytes.store(100, Ordering::Release);
        status.inner.leader_wal_bytes.store(450, Ordering::Release);
        status.touch_contact();
        let snap = status.snapshot();
        assert_eq!(snap.leader, "127.0.0.1:9999");
        assert_eq!(snap.state, ReplState::Bootstrapping);
        assert_eq!(snap.lag_units, 4);
        assert_eq!(snap.lag_bytes, 350);
        assert!(snap.last_contact_ms.is_some());
        assert_eq!(snap.reconnects, 0);
    }

    #[test]
    fn failed_state_is_terminal_except_for_stop() {
        let status = ReplicationStatus::new("x".into());
        status.fail("boom".into());
        status.set_state(ReplState::Streaming);
        assert_eq!(status.snapshot().state, ReplState::Failed);
        assert_eq!(status.snapshot().last_error.as_deref(), Some("boom"));
        status.set_state(ReplState::Stopped);
        assert_eq!(status.snapshot().state, ReplState::Stopped);
    }

    #[test]
    fn stop_signal_interrupts_sleep() {
        let signal = Arc::new(StopSignal::default());
        let waker = Arc::clone(&signal);
        let start = Instant::now();
        let sleeper = std::thread::spawn(move || signal.sleep(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(50));
        waker.set();
        assert!(sleeper.join().unwrap());
        assert!(start.elapsed() < Duration::from_secs(5));
        // Already-stopped signal returns immediately.
        assert!(waker.sleep(Duration::from_secs(30)));
    }

    #[test]
    fn bootstrap_against_dead_leader_times_out() {
        // Bound then dropped: nothing listens here.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let config = ReplicatorConfig {
            bootstrap_timeout: Duration::from_millis(300),
            backoff_initial: Duration::from_millis(50),
            ..ReplicatorConfig::default()
        };
        let err = Replicator::start(
            addr.to_string(),
            fixtures::database(),
            fixtures::mapping(),
            config,
        )
        .expect_err("bootstrap must fail without a leader");
        assert!(err.to_string().contains("timed out"), "{err}");
    }
}
