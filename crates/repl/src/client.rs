//! A minimal blocking HTTP/1.1 client for leader traffic.
//!
//! Deliberately not built on the server's parser (the follower should
//! observe the wire independently) and deliberately tiny: the leader's
//! replication endpoints always answer with an explicit
//! `Content-Length`, so framing is by length only. The connection is
//! kept alive across polls; any I/O or framing error drops it, and the
//! next request reconnects.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug)]
pub struct LeaderResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl LeaderResponse {
    /// First header with the given name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// A header parsed as `u64`.
    pub fn header_u64(&self, name: &str) -> Option<u64> {
        self.header(name).and_then(|v| v.parse().ok())
    }
}

/// Keep-alive connection to the leader's HTTP endpoint. Reconnects
/// lazily on the next request after any failure.
#[derive(Debug)]
pub struct LeaderClient {
    leader: String,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl LeaderClient {
    /// A client for `leader` (a `host:port` address). No connection is
    /// made until the first request.
    pub fn new(leader: impl Into<String>) -> LeaderClient {
        LeaderClient {
            leader: leader.into(),
            stream: None,
            buf: Vec::new(),
        }
    }

    /// The leader address this client talks to.
    pub fn leader(&self) -> &str {
        &self.leader
    }

    /// Drop the current connection (the next request reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.buf.clear();
    }

    /// `GET path` with the given read timeout (must exceed any
    /// server-side long-poll the path performs). On error the
    /// connection is dropped so the next call starts fresh. A fresh
    /// request id is minted for the call; use
    /// [`LeaderClient::get_with_request_id`] to choose it.
    pub fn get(&mut self, path: &str, read_timeout: Duration) -> std::io::Result<LeaderResponse> {
        self.get_with_request_id(path, read_timeout, &obs::next_request_id())
    }

    /// [`LeaderClient::get`] with an explicit request id, sent as
    /// `X-Request-Id` so the leader's access log, error bodies, and
    /// traces stitch to the follower call that caused them.
    pub fn get_with_request_id(
        &mut self,
        path: &str,
        read_timeout: Duration,
        request_id: &str,
    ) -> std::io::Result<LeaderResponse> {
        let result = self.get_inner(path, read_timeout, request_id);
        if result.is_err() {
            self.disconnect();
        }
        result
    }

    fn get_inner(
        &mut self,
        path: &str,
        read_timeout: Duration,
        request_id: &str,
    ) -> std::io::Result<LeaderResponse> {
        if self.stream.is_none() {
            let addr = self.leader.to_socket_addrs()?.next().ok_or_else(|| {
                bad(&format!(
                    "leader address {:?} resolves to nothing",
                    self.leader
                ))
            })?;
            let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.buf.clear();
        }
        let stream = self.stream.as_mut().expect("connected above");
        stream.set_read_timeout(Some(read_timeout))?;
        let request = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nX-Request-Id: {request_id}\r\nConnection: keep-alive\r\n\r\n",
            self.leader
        );
        stream.write_all(request.as_bytes())?;

        let eof = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "leader closed");
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match stream.read(&mut chunk)? {
                0 => return Err(eof()),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_ascii_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("missing content-length"))?;
        while self.buf.len() < head_end + 4 + content_length {
            match stream.read(&mut chunk)? {
                0 => return Err(eof()),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = self.buf[head_end + 4..head_end + 4 + content_length].to_vec();
        self.buf.drain(..head_end + 4 + content_length);
        Ok(LeaderResponse {
            status,
            headers,
            body,
        })
    }
}

fn bad(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    // A one-connection canned server: answers every request on the
    // first accepted connection with the given responses, in order.
    fn canned(responses: Vec<String>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut discard = [0u8; 4096];
            for response in responses {
                // Read (and ignore) one request head.
                let _ = std::io::Read::read(&mut stream, &mut discard);
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn parses_status_headers_and_body_over_keep_alive() {
        let (addr, server) = canned(vec![
            "HTTP/1.1 200 OK\r\nX-Wal-Epoch: 7\r\nContent-Length: 5\r\n\r\nhello".into(),
            "HTTP/1.1 409 Conflict\r\nContent-Length: 2\r\n\r\n{}".into(),
        ]);
        let mut client = LeaderClient::new(addr.to_string());
        let first = client.get("/wal", Duration::from_secs(2)).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.header_u64("x-wal-epoch"), Some(7));
        assert_eq!(first.body, b"hello");
        let second = client.get("/wal", Duration::from_secs(2)).unwrap();
        assert_eq!(second.status, 409);
        assert_eq!(second.body, b"{}");
        server.join().unwrap();
    }

    #[test]
    fn request_id_header_reaches_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut head = [0u8; 4096];
            let n = std::io::Read::read(&mut stream, &mut head).unwrap();
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            String::from_utf8_lossy(&head[..n]).into_owned()
        });
        let mut client = LeaderClient::new(addr.to_string());
        let response = client
            .get_with_request_id("/wal", Duration::from_secs(2), "follower-7-cafe")
            .unwrap();
        assert_eq!(response.status, 200);
        let head = server.join().unwrap();
        assert!(
            head.contains("X-Request-Id: follower-7-cafe\r\n"),
            "request head must carry the id, got: {head}"
        );
    }

    #[test]
    fn connection_error_surfaces_and_resets() {
        // Nothing listens on this port (bound then dropped).
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let mut client = LeaderClient::new(addr.to_string());
        assert!(client.get("/wal", Duration::from_millis(500)).is_err());
        // The client is reusable after the failure (it just fails again
        // here, but without panicking on stale state).
        assert!(client.get("/wal", Duration::from_millis(500)).is_err());
    }
}
