//! Validate a Prometheus text exposition document read from stdin.
//!
//! Used by the CI server-smoke step:
//!
//! ```text
//! curl -s http://127.0.0.1:PORT/metrics | \
//!     cargo run -q -p fixtures --example prom_validate
//! ```
//!
//! Exits 0 and prints a sample count when the document is valid; exits
//! 1 with the first problem on stderr otherwise.

use std::io::Read;

fn main() {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("prom_validate: cannot read stdin: {e}");
        std::process::exit(1);
    }
    match fixtures::prom::validate(&input) {
        Ok(exposition) => {
            println!(
                "prom_validate: OK ({} samples, {} series families)",
                exposition.samples.len(),
                exposition
                    .samples
                    .iter()
                    .map(|s| s.name.as_str())
                    .collect::<std::collections::BTreeSet<_>>()
                    .len()
            );
        }
        Err(problem) => {
            eprintln!("prom_validate: INVALID: {problem}");
            std::process::exit(1);
        }
    }
}
