//! Fixtures for the OntoAccess reproduction: the paper's publication use
//! case plus synthetic data and workload generators for tests, examples,
//! and benchmarks.
//!
//! The schema (Figure 1), domain ontology (Figure 2), and R3M mapping
//! (Table 1) live in [`ontoaccess::usecase`] and are re-exported here;
//! this crate adds the sample rows the paper's examples assume
//! ([`seed_paper_rows`]), scalable synthetic population ([`data`]), and
//! SPARQL/Update workload generation ([`workload`]).

#![warn(missing_docs)]

pub mod data;
pub mod diff;
pub mod http_probe;
pub mod prom;
pub mod workload;

pub use ontoaccess::usecase::{database, mapping, ontology, schema, MAP_NS, URI_PREFIX};

use ontoaccess::{Endpoint, Mediator};
use rel::{Database, Value};

/// An endpoint over an empty Figure-1 database.
pub fn endpoint() -> Endpoint {
    Endpoint::new(database(), mapping()).expect("use case mapping is valid")
}

/// An endpoint preloaded with the rows the paper's worked examples
/// assume (teams 4/5, authors 6/7, pubtype 4, publisher 3, publication 1
/// authored by author 6).
pub fn endpoint_with_sample_data() -> Endpoint {
    let mut db = database();
    seed_paper_rows(&mut db);
    Endpoint::new(db, mapping()).expect("use case mapping is valid")
}

/// A shared mediator over an empty Figure-1 database.
pub fn mediator() -> Mediator {
    Mediator::new(database(), mapping()).expect("use case mapping is valid")
}

/// A shared mediator preloaded with the paper's sample rows (see
/// [`endpoint_with_sample_data`]).
pub fn mediator_with_sample_data() -> Mediator {
    let mut db = database();
    seed_paper_rows(&mut db);
    Mediator::new(db, mapping()).expect("use case mapping is valid")
}

/// A durable mediator over `dir`: on a fresh directory the paper's
/// sample rows are the base state; on reopen the recovered state wins.
pub fn durable_mediator_with_sample_data(dir: &std::path::Path) -> (Mediator, dur::RecoveryReport) {
    let mut db = database();
    seed_paper_rows(&mut db);
    Mediator::open_durable(dir, db, mapping()).expect("data dir opens")
}

/// A unique empty scratch directory under the system temp dir (label +
/// pid + counter — no timestamps, so parallel test binaries and
/// repeated runs cannot collide with themselves). The caller removes it
/// when done.
pub fn scratch_dir(label: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ontoaccess-{label}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Insert the sample rows of the paper's running examples.
pub fn seed_paper_rows(db: &mut Database) {
    let a = |name: &str, v: Value| (name.to_owned(), v);
    db.insert(
        "team",
        &[
            a("id", Value::Int(4)),
            a("name", Value::text("Database Technology")),
            a("code", Value::text("DBTG")),
        ],
    )
    .expect("fresh ids");
    db.insert(
        "team",
        &[
            a("id", Value::Int(5)),
            a("name", Value::text("Software Engineering")),
            a("code", Value::text("SEAL")),
        ],
    )
    .expect("fresh ids");
    db.insert(
        "author",
        &[
            a("id", Value::Int(6)),
            a("title", Value::text("Mr")),
            a("firstname", Value::text("Matthias")),
            a("lastname", Value::text("Hert")),
            a("email", Value::text("hert@ifi.uzh.ch")),
            a("team", Value::Int(5)),
        ],
    )
    .expect("fresh ids");
    db.insert(
        "author",
        &[
            a("id", Value::Int(7)),
            a("firstname", Value::text("Gerald")),
            a("lastname", Value::text("Reif")),
            a("team", Value::Int(5)),
        ],
    )
    .expect("fresh ids");
    db.insert(
        "pubtype",
        &[
            a("id", Value::Int(4)),
            a("type", Value::text("inproceedings")),
        ],
    )
    .expect("fresh ids");
    db.insert(
        "publisher",
        &[a("id", Value::Int(3)), a("name", Value::text("Springer"))],
    )
    .expect("fresh ids");
    db.insert(
        "publication",
        &[
            a("id", Value::Int(1)),
            a(
                "title",
                Value::text("Relational Databases as Semantic Web Endpoints"),
            ),
            a("year", Value::Int(2009)),
            a("type", Value::Int(4)),
            a("publisher", Value::Int(3)),
        ],
    )
    .expect("fresh ids");
    db.insert(
        "publication_author",
        &[a("publication", Value::Int(1)), a("author", Value::Int(6))],
    )
    .expect("fresh ids");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_endpoint_answers_queries() {
        let ep = endpoint_with_sample_data();
        let sols = ep.select("SELECT ?x WHERE { ?x a foaf:Person . }").unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn empty_endpoint_has_empty_view() {
        let ep = endpoint();
        assert!(ep.materialize().unwrap().is_empty());
    }

    #[test]
    fn seeded_counts() {
        let ep = endpoint_with_sample_data();
        let db = ep.database();
        assert_eq!(db.row_count("team").unwrap(), 2);
        assert_eq!(db.row_count("author").unwrap(), 2);
        assert_eq!(db.row_count("publication").unwrap(), 1);
        assert_eq!(db.row_count("publication_author").unwrap(), 1);
    }
}
