//! Scalable synthetic population of the publication database.
//!
//! The paper's feasibility study uses a handful of rows; the benchmark
//! harness needs databases of controlled size to measure how
//! translation and execution scale. Generation is deterministic per
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rel::{Database, Value};

/// Sizing knobs for the synthetic database.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Number of research teams.
    pub teams: usize,
    /// Number of authors (each assigned to a random team; ~10% without
    /// a team to exercise NULL foreign keys).
    pub authors: usize,
    /// Number of publishers.
    pub publishers: usize,
    /// Number of publication types.
    pub pubtypes: usize,
    /// Number of publications.
    pub publications: usize,
    /// Average number of authors per publication (link rows).
    pub authors_per_publication: usize,
}

impl Spec {
    /// A spec scaled around `n` publications with proportionate
    /// supporting entities.
    pub fn scaled(n: usize) -> Spec {
        Spec {
            teams: (n / 10).max(2),
            authors: (n / 2).max(4),
            publishers: (n / 20).max(2),
            pubtypes: 4,
            publications: n.max(1),
            authors_per_publication: 2,
        }
    }
}

impl Default for Spec {
    fn default() -> Self {
        Spec::scaled(100)
    }
}

/// First author id used by the generator (ids below are reserved for the
/// paper's hand-written rows).
pub const ID_BASE: i64 = 1000;

/// Populate `db` according to `spec`, deterministically for `seed`.
/// Returns the number of rows inserted.
pub fn populate(db: &mut Database, spec: &Spec, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = |name: &str, v: Value| (name.to_owned(), v);
    let mut rows = 0;

    let team_ids: Vec<i64> = (0..spec.teams).map(|i| ID_BASE + i as i64).collect();
    for &id in &team_ids {
        db.insert(
            "team",
            &[
                a("id", Value::Int(id)),
                a("name", Value::text(format!("Team {id}"))),
                a("code", Value::text(format!("T{id}"))),
            ],
        )
        .expect("generated ids are fresh");
        rows += 1;
    }

    let author_ids: Vec<i64> = (0..spec.authors).map(|i| ID_BASE + i as i64).collect();
    for &id in &author_ids {
        let team = if rng.gen_bool(0.9) {
            Value::Int(team_ids[rng.gen_range(0..team_ids.len())])
        } else {
            Value::Null
        };
        let email = if rng.gen_bool(0.7) {
            Value::text(format!("author{id}@example.org"))
        } else {
            Value::Null
        };
        db.insert(
            "author",
            &[
                a("id", Value::Int(id)),
                a("firstname", Value::text(format!("First{id}"))),
                a("lastname", Value::text(format!("Last{id}"))),
                a("email", email),
                a("team", team),
            ],
        )
        .expect("generated ids are fresh");
        rows += 1;
    }

    let publisher_ids: Vec<i64> = (0..spec.publishers).map(|i| ID_BASE + i as i64).collect();
    for &id in &publisher_ids {
        db.insert(
            "publisher",
            &[
                a("id", Value::Int(id)),
                a("name", Value::text(format!("Publisher {id}"))),
            ],
        )
        .expect("generated ids are fresh");
        rows += 1;
    }

    let pubtype_ids: Vec<i64> = (0..spec.pubtypes).map(|i| ID_BASE + i as i64).collect();
    let kinds = ["inproceedings", "article", "book", "techreport"];
    for (i, &id) in pubtype_ids.iter().enumerate() {
        db.insert(
            "pubtype",
            &[
                a("id", Value::Int(id)),
                a("type", Value::text(kinds[i % kinds.len()])),
            ],
        )
        .expect("generated ids are fresh");
        rows += 1;
    }

    let publication_ids: Vec<i64> = (0..spec.publications).map(|i| ID_BASE + i as i64).collect();
    for &id in &publication_ids {
        db.insert(
            "publication",
            &[
                a("id", Value::Int(id)),
                a("title", Value::text(format!("Publication {id}"))),
                a("year", Value::Int(1995 + (id % 15))),
                a(
                    "type",
                    Value::Int(pubtype_ids[rng.gen_range(0..pubtype_ids.len())]),
                ),
                a(
                    "publisher",
                    Value::Int(publisher_ids[rng.gen_range(0..publisher_ids.len())]),
                ),
            ],
        )
        .expect("generated ids are fresh");
        rows += 1;
        // Link rows: distinct authors per publication.
        let k = spec.authors_per_publication.min(author_ids.len());
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < k {
            chosen.insert(author_ids[rng.gen_range(0..author_ids.len())]);
        }
        for author in chosen {
            db.insert(
                "publication_author",
                &[
                    a("publication", Value::Int(id)),
                    a("author", Value::Int(author)),
                ],
            )
            .expect("generated ids are fresh");
            rows += 1;
        }
    }
    rows
}

/// Convenience: a populated database of roughly `n` publications.
pub fn populated_database(n: usize, seed: u64) -> Database {
    let mut db = crate::database();
    populate(&mut db, &Spec::scaled(n), seed);
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_is_deterministic() {
        let d1 = populated_database(50, 7);
        let d2 = populated_database(50, 7);
        for table in ["team", "author", "publication", "publication_author"] {
            assert_eq!(d1.row_count(table).unwrap(), d2.row_count(table).unwrap());
        }
        let rows1: Vec<_> = d1.scan("author").unwrap().map(|(_, r)| r.clone()).collect();
        let rows2: Vec<_> = d2.scan("author").unwrap().map(|(_, r)| r.clone()).collect();
        assert_eq!(rows1, rows2);
    }

    #[test]
    fn different_seeds_differ() {
        let d1 = populated_database(50, 1);
        let d2 = populated_database(50, 2);
        let rows1: Vec<_> = d1.scan("author").unwrap().map(|(_, r)| r.clone()).collect();
        let rows2: Vec<_> = d2.scan("author").unwrap().map(|(_, r)| r.clone()).collect();
        assert_ne!(rows1, rows2);
    }

    #[test]
    fn spec_counts_respected() {
        let spec = Spec {
            teams: 3,
            authors: 10,
            publishers: 2,
            pubtypes: 4,
            publications: 20,
            authors_per_publication: 2,
        };
        let mut db = crate::database();
        populate(&mut db, &spec, 42);
        assert_eq!(db.row_count("team").unwrap(), 3);
        assert_eq!(db.row_count("author").unwrap(), 10);
        assert_eq!(db.row_count("publication").unwrap(), 20);
        assert_eq!(db.row_count("publication_author").unwrap(), 40);
    }

    #[test]
    fn populated_database_is_mappable() {
        // The whole synthetic database materializes without errors —
        // i.e. it is consistent with the Table 1 mapping.
        let db = populated_database(20, 3);
        let g = ontoaccess::materialize(&db, &crate::mapping()).unwrap();
        assert!(g.len() > 100);
    }

    #[test]
    fn coexists_with_paper_rows() {
        let mut db = crate::database();
        crate::seed_paper_rows(&mut db);
        populate(&mut db, &Spec::scaled(10), 11);
        assert!(db.row_count("author").unwrap() >= 7);
    }
}
