//! A small validator for the Prometheus text exposition format
//! (version 0.0.4), used by tests and the CI smoke step to check that
//! `GET /metrics` emits something a real scraper would accept.
//!
//! Scope: syntax of `# HELP`/`# TYPE` comments, metric names, label
//! sets and sample values, plus the histogram invariants scrapers rely
//! on — cumulative non-decreasing `_bucket` series ending in a `+Inf`
//! bucket whose value equals `_count`, with `_sum` present. It is not
//! a full client-library parser; it rejects what would break a scrape
//! and accepts the rest.

use std::collections::BTreeMap;

/// One parsed sample line: metric name, optional label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric name (series family plus `_bucket`/`_sum`/`_count`
    /// suffixes for histograms).
    pub name: String,
    /// Label name/value pairs, in order of appearance.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` parses as [`f64::INFINITY`]).
    pub value: f64,
}

impl Sample {
    /// The value of label `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The outcome of a successful validation: every sample, in exposition
/// order.
#[derive(Debug)]
pub struct Exposition {
    /// All parsed samples.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// All samples with this exact metric name.
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Whether any sample has this exact metric name.
    pub fn has(&self, name: &str) -> bool {
        self.samples.iter().any(|s| s.name == name)
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

type Labels = Vec<(String, String)>;

// Parse `{k="v",k2="v2"}` starting after the metric name. Returns the
// label pairs and the rest of the line (the value).
fn parse_labels(text: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut rest = &text[1..]; // skip '{'
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {text:?}"))?;
        let name = rest[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("invalid label name {name:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        let mut value = String::new();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("label value not quoted in {text:?}"));
        }
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("invalid escape \\{other} in {text:?}")),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {text:?}"))?;
        labels.push((name.to_owned(), value));
        rest = &rest[end + 1..];
        if let Some(after) = rest.trim_start().strip_prefix(',') {
            rest = after;
        }
    }
}

/// Validate a full exposition document. Returns every parsed sample on
/// success, the first problem found on failure.
pub fn validate(text: &str) -> Result<Exposition, String> {
    let mut samples = Vec::new();
    // Family name → whether HELP/TYPE were seen (each at most once).
    let mut helped: BTreeMap<String, (bool, bool)> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let (kind, rest) = match comment.split_once(' ') {
                Some(split) => split,
                None => continue, // a bare comment
            };
            if kind != "HELP" && kind != "TYPE" {
                continue;
            }
            let (name, detail) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: # {kind} without a metric name"))?;
            if !valid_metric_name(name) {
                return Err(format!(
                    "line {n}: invalid metric name {name:?} in # {kind}"
                ));
            }
            let entry = helped.entry(name.to_owned()).or_insert((false, false));
            if kind == "HELP" {
                if entry.0 {
                    return Err(format!("line {n}: duplicate # HELP for {name}"));
                }
                entry.0 = true;
            } else {
                if entry.1 {
                    return Err(format!("line {n}: duplicate # TYPE for {name}"));
                }
                if !matches!(
                    detail,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown metric type {detail:?}"));
                }
                entry.1 = true;
            }
            continue;
        }
        // A sample line: name[{labels}] value
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .ok_or_else(|| format!("line {n}: sample without a value: {line:?}"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            parse_labels(&line[name_end..]).map_err(|e| format!("line {n}: {e}"))?
        } else {
            (Vec::new(), &line[name_end..])
        };
        let value_text = rest.trim();
        // A timestamp may follow the value; take the first token.
        let value_token = value_text.split_ascii_whitespace().next().unwrap_or("");
        let value = parse_value(value_token)
            .ok_or_else(|| format!("line {n}: invalid sample value {value_token:?}"))?;
        samples.push(Sample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    let exposition = Exposition { samples };
    check_histograms(&exposition)?;
    Ok(exposition)
}

// Histogram invariants, per label set: `_bucket` values cumulative and
// non-decreasing in `le` order, a `+Inf` bucket present and equal to
// `_count`, and `_sum` present.
fn check_histograms(exposition: &Exposition) -> Result<(), String> {
    // Family → non-le label set → (buckets in order, count, sum seen).
    type SeriesKey = (String, String);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    let mut sums: BTreeMap<SeriesKey, bool> = BTreeMap::new();
    let other_labels = |s: &Sample| {
        let mut pairs: Vec<String> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        pairs.sort();
        pairs.join(",")
    };
    for sample in &exposition.samples {
        if let Some(family) = sample.name.strip_suffix("_bucket") {
            let le = sample
                .label("le")
                .ok_or_else(|| format!("{} sample without le label", sample.name))?;
            let le = parse_value(le).ok_or_else(|| format!("invalid le value {le:?}"))?;
            buckets
                .entry((family.to_owned(), other_labels(sample)))
                .or_default()
                .push((le, sample.value));
        } else if let Some(family) = sample.name.strip_suffix("_count") {
            counts.insert((family.to_owned(), other_labels(sample)), sample.value);
        } else if let Some(family) = sample.name.strip_suffix("_sum") {
            sums.insert((family.to_owned(), other_labels(sample)), true);
        }
    }
    for ((family, labels), series) in &buckets {
        let mut previous = f64::NEG_INFINITY;
        let mut cumulative = -1.0;
        let mut saw_inf = false;
        for (le, value) in series {
            if *le < previous {
                return Err(format!("{family}{{{labels}}}: le values out of order"));
            }
            if cumulative >= 0.0 && *value < cumulative {
                return Err(format!("{family}{{{labels}}}: buckets not cumulative"));
            }
            previous = *le;
            cumulative = *value;
            if le.is_infinite() {
                saw_inf = true;
            }
        }
        if !saw_inf {
            return Err(format!("{family}{{{labels}}}: missing +Inf bucket"));
        }
        let key = (family.clone(), labels.clone());
        match counts.get(&key) {
            Some(count) if *count == cumulative => {}
            Some(count) => {
                return Err(format!(
                    "{family}{{{labels}}}: _count {count} != +Inf bucket {cumulative}"
                ))
            }
            None => return Err(format!("{family}{{{labels}}}: missing _count")),
        }
        if !sums.contains_key(&key) {
            return Err(format!("{family}{{{labels}}}: missing _sum"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_document() {
        let doc = "\
# HELP requests_total Requests served.\n\
# TYPE requests_total counter\n\
requests_total 7\n\
# HELP latency_seconds Latency.\n\
# TYPE latency_seconds histogram\n\
latency_seconds_bucket{le=\"0.1\"} 2\n\
latency_seconds_bucket{le=\"+Inf\"} 3\n\
latency_seconds_sum 0.42\n\
latency_seconds_count 3\n";
        let exposition = validate(doc).expect("valid document");
        assert!(exposition.has("requests_total"));
        assert_eq!(exposition.series("latency_seconds_bucket").len(), 2);
        assert_eq!(exposition.samples[0].value, 7.0);
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let doc = "\
latency_seconds_bucket{le=\"0.1\"} 5\n\
latency_seconds_bucket{le=\"+Inf\"} 3\n\
latency_seconds_sum 1\n\
latency_seconds_count 3\n";
        assert!(validate(doc).unwrap_err().contains("not cumulative"));
    }

    #[test]
    fn rejects_count_mismatch_and_missing_inf() {
        let mismatch = "\
latency_seconds_bucket{le=\"0.1\"} 1\n\
latency_seconds_bucket{le=\"+Inf\"} 3\n\
latency_seconds_sum 1\n\
latency_seconds_count 4\n";
        assert!(validate(mismatch).unwrap_err().contains("_count"));
        let no_inf = "\
latency_seconds_bucket{le=\"0.1\"} 1\n\
latency_seconds_sum 1\n\
latency_seconds_count 1\n";
        assert!(validate(no_inf).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn rejects_bad_names_and_values() {
        assert!(validate("9bad_name 1\n").is_err());
        assert!(validate("name not-a-number\n").is_err());
        assert!(validate("name{le=\"unterminated} 1\n").is_err());
    }

    #[test]
    fn parses_labels_with_escapes() {
        let doc = "m{path=\"a\\\"b\",x=\"1\"} 2\n";
        let exposition = validate(doc).expect("valid");
        assert_eq!(exposition.samples[0].label("path"), Some("a\"b"));
        assert_eq!(exposition.samples[0].label("x"), Some("1"));
    }
}
