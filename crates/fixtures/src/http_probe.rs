//! A minimal raw-socket HTTP/1.1 probe client, shared by the server's
//! integration tests and the HTTP benches.
//!
//! Deliberately *not* built on the server's own parser: tests and
//! benches should observe the wire with an independent implementation.
//! Responses are framed by `Content-Length` only (which the server
//! always sends), and a connection keeps its carry-over buffer so
//! keep-alive reuse and pipelining work.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug)]
pub struct ProbeResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in order of appearance (names as sent).
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl ProbeResponse {
    /// First header with the given name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) UTF-8.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A client connection with its own read buffer (reusable across
/// keep-alive requests).
#[derive(Debug)]
pub struct ProbeConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ProbeConn {
    /// Connect with a 10s read timeout and `TCP_NODELAY`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<ProbeConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(ProbeConn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Raw access to the socket (interim responses, partial writes,
    /// custom timeouts).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Write `raw` (a complete request) and read one response.
    pub fn send(&mut self, raw: &str) -> std::io::Result<ProbeResponse> {
        self.stream.write_all(raw.as_bytes())?;
        self.read_response()
    }

    /// Read exactly one response off the connection.
    pub fn read_response(&mut self) -> std::io::Result<ProbeResponse> {
        let eof = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "connection closed");
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match self.stream.read(&mut chunk)? {
                0 => return Err(eof()),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_owned());
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_ascii_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad status line"))?;
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad("missing content-length"))?;
        while self.buf.len() < head_end + 4 + content_length {
            match self.stream.read(&mut chunk)? {
                0 => return Err(eof()),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = self.buf[head_end + 4..head_end + 4 + content_length].to_vec();
        // Keep anything past this response buffered for the next one.
        self.buf.drain(..head_end + 4 + content_length);
        Ok(ProbeResponse {
            status,
            headers,
            body,
        })
    }
}

/// One-shot request on a fresh connection.
pub fn one_shot(addr: SocketAddr, raw: &str) -> std::io::Result<ProbeResponse> {
    ProbeConn::connect(addr)?.send(raw)
}

/// Percent-encode everything outside the URL-safe set (for query
/// strings in probe requests).
pub fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}
