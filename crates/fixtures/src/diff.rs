//! Differential-test assertions shared by the write-pipeline and
//! concurrency suites: byte-level database equality, index audits, and
//! the planner-vs-reference query harness over a final state.

use rdf::namespace::PrefixMap;
use rel::{Database, IndexKey, RowId, Value};

/// A dictionary-decoded view of one cell: text ids are resolved back to
/// their string content so heaps compare by what a client observes, not
/// by interner id. Doubles compare by bit pattern (total equality).
#[derive(Debug, PartialEq)]
enum Decoded {
    Null,
    Int(i64),
    DoubleBits(u64),
    Bool(bool),
    Text(&'static str),
}

fn decode(value: &Value) -> Decoded {
    match value {
        Value::Null => Decoded::Null,
        Value::Int(i) => Decoded::Int(*i),
        Value::Double(d) => Decoded::DoubleBits(d.to_bits()),
        Value::Bool(b) => Decoded::Bool(*b),
        Value::Text(s) => Decoded::Text(s.as_str()),
    }
}

/// Heap equality: every table's `(row id, values)` stream must match —
/// first on raw values (integer dictionary ids), then again through the
/// decode layer, which catches any divergence between a text id and the
/// string it resolves to.
///
/// # Panics
/// Panics (assert) on the first differing table, naming `context`.
pub fn assert_heaps_identical(a: &Database, b: &Database, context: &str) {
    for table in a.schema().tables() {
        let rows_a: Vec<(RowId, Vec<Value>)> = a
            .scan(&table.name)
            .unwrap()
            .map(|(id, row)| (id, row.clone()))
            .collect();
        let rows_b: Vec<(RowId, Vec<Value>)> = b
            .scan(&table.name)
            .unwrap()
            .map(|(id, row)| (id, row.clone()))
            .collect();
        assert_eq!(rows_a, rows_b, "table {} differs: {context}", table.name);
        let decoded = |rows: &[(RowId, Vec<Value>)]| -> Vec<(RowId, Vec<Decoded>)> {
            rows.iter()
                .map(|(id, row)| (*id, row.iter().map(decode).collect()))
                .collect()
        };
        assert_eq!(
            decoded(&rows_a),
            decoded(&rows_b),
            "table {} differs after decoding: {context}",
            table.name
        );
    }
}

/// Index consistency: every probeable column's index must answer exactly
/// the scan-derived row set for every stored value.
///
/// # Panics
/// Panics (assert) on the first inconsistent index, naming `context`.
pub fn assert_indexes_consistent(db: &Database, context: &str) {
    use std::collections::BTreeMap;
    for table in db.schema().tables() {
        for (idx, column) in table.columns.iter().enumerate() {
            if !db.supports_index_probe(&table.name, &column.name).unwrap() {
                continue;
            }
            let mut expected: BTreeMap<IndexKey, (Value, Vec<RowId>)> = BTreeMap::new();
            for (row_id, row) in db.scan(&table.name).unwrap() {
                if row[idx].is_null() {
                    continue;
                }
                expected
                    .entry(row[idx].index_key())
                    .or_insert_with(|| (row[idx], Vec::new()))
                    .1
                    .push(row_id);
            }
            for (value, ids) in expected.values() {
                let probed = db
                    .index_probe(&table.name, &column.name, value)
                    .unwrap()
                    .unwrap_or_else(|| panic!("probeable column stopped probing: {}", column.name));
                assert_eq!(
                    &probed, ids,
                    "index on {}.{} inconsistent for {value}: {context}",
                    table.name, column.name
                );
            }
        }
    }
}

/// The planner differential harness over a final state: the
/// index-backed planner and the clone-everything reference executor must
/// agree on the workload's join queries.
///
/// # Panics
/// Panics (assert) on the first query where the two executors disagree.
pub fn assert_planner_matches_reference(db: &mut Database, context: &str) {
    let mapping = crate::mapping();
    for text in [
        crate::workload::select_authors_with_team(),
        crate::workload::select_publications_with_authors(),
        crate::workload::select_recent_publications(2000),
    ] {
        let query = sparql::parse_query_with_prefixes(&text, PrefixMap::common()).unwrap();
        let sparql::Query::Select(select) = query else {
            panic!()
        };
        let compiled = ontoaccess::compile_select(db, &mapping, &select).unwrap();
        let reference = rel::sql::execute_select_reference(db, &compiled.sql).unwrap();
        ontoaccess::ensure_join_indexes(db, &compiled).unwrap();
        let planner =
            rel::sql::execute(db, &rel::sql::Statement::Select(compiled.sql.clone())).unwrap();
        assert_eq!(
            planner.rows().unwrap(),
            &reference,
            "planner drift after {context}: {text}"
        );
    }
}
