//! SPARQL/Update and SPARQL query workload generation.
//!
//! Produces request *texts* (what a client would POST to the endpoint),
//! parameterized and deterministic per seed — the input side of every
//! benchmark in `crates/bench`.

use crate::data::ID_BASE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PREFIXES: &str = "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                        PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
                        PREFIX dc: <http://purl.org/dc/elements/1.1/>\n\
                        PREFIX ont: <http://example.org/ontology#>\n\
                        PREFIX ex: <http://example.org/db/>\n";

/// Prepend the use case prefixes to a request body.
pub fn with_prefixes(body: &str) -> String {
    format!("{PREFIXES}{body}")
}

/// An `INSERT DATA` creating one new author with `extra_properties`
/// optional attributes (0..=4: title, firstname, email, team) — scales
/// the per-subject triple count of Algorithm 1.
pub fn insert_author(id: i64, extra_properties: usize, team: Option<i64>) -> String {
    let mut lines = vec![format!("ex:author{id} foaf:family_name \"Last{id}\"")];
    if extra_properties >= 1 {
        lines.push(format!("    foaf:firstName \"First{id}\""));
    }
    if extra_properties >= 2 {
        lines.push("    foaf:title \"Dr\"".to_string());
    }
    if extra_properties >= 3 {
        lines.push(format!("    foaf:mbox <mailto:author{id}@example.org>"));
    }
    if extra_properties >= 4 {
        if let Some(team) = team {
            lines.push(format!("    ont:team ex:team{team}"));
        }
    }
    with_prefixes(&format!("INSERT DATA {{\n{} .\n}}", lines.join(" ;\n")))
}

/// The paper's Listing 15 shape at parameterized id offsets: one
/// operation inserting a complete dataset (team, pubtype, publisher,
/// author, publication, authorship) whose statements must be FK-sorted.
pub fn insert_complete_dataset(base: i64) -> String {
    with_prefixes(&format!(
        "INSERT DATA {{\n\
           ex:pub{base} dc:title \"Publication {base}\" ;\n\
             ont:pubYear \"2009\" ;\n\
             ont:pubType ex:pubtype{base} ;\n\
             dc:publisher ex:publisher{base} ;\n\
             dc:creator ex:author{base} .\n\
           ex:author{base} foaf:title \"Mr\" ;\n\
             foaf:firstName \"First{base}\" ;\n\
             foaf:family_name \"Last{base}\" ;\n\
             foaf:mbox <mailto:a{base}@example.org> ;\n\
             ont:team ex:team{base} .\n\
           ex:team{base} foaf:name \"Team {base}\" ;\n\
             ont:teamCode \"T{base}\" .\n\
           ex:pubtype{base} ont:type \"inproceedings\" .\n\
           ex:publisher{base} ont:name \"Publisher {base}\" .\n\
         }}"
    ))
}

/// A `DELETE DATA` removing one author's email (Listing 17 shape).
pub fn delete_author_email(id: i64) -> String {
    with_prefixes(&format!(
        "DELETE DATA {{ ex:author{id} foaf:mbox <mailto:author{id}@example.org> . }}"
    ))
}

/// A `MODIFY` replacing one author's email (Listing 11 shape).
pub fn modify_author_email(id: i64) -> String {
    with_prefixes(&format!(
        "MODIFY\n\
         DELETE {{ ?x foaf:mbox ?mbox . }}\n\
         INSERT {{ ?x foaf:mbox <mailto:new{id}@example.org> . }}\n\
         WHERE {{\n\
           ?x rdf:type foaf:Person ;\n\
              foaf:firstName \"First{id}\" ;\n\
              foaf:family_name \"Last{id}\" ;\n\
              foaf:mbox ?mbox .\n\
         }}"
    ))
}

/// A `MODIFY` whose WHERE clause matches *every* author of a team —
/// scales the binding count of Algorithm 2.
pub fn modify_team_members(team: i64, new_title: &str) -> String {
    with_prefixes(&format!(
        "MODIFY\n\
         DELETE {{ ?x foaf:title ?t . }}\n\
         INSERT {{ ?x foaf:title \"{new_title}\" . }}\n\
         WHERE {{ ?x ont:team ex:team{team} ; foaf:title ?t . }}"
    ))
}

/// A SELECT joining authors to teams (two-table join query).
pub fn select_authors_with_team() -> String {
    with_prefixes(
        "SELECT ?x ?code WHERE { ?x a foaf:Person ; ont:team ?t . ?t ont:teamCode ?code . }",
    )
}

/// A SELECT over the link table (three-table join query).
pub fn select_publications_with_authors() -> String {
    with_prefixes("SELECT ?p ?last WHERE { ?p dc:creator ?a . ?a foaf:family_name ?last . }")
}

/// A SELECT with a numeric FILTER.
pub fn select_recent_publications(min_year: i64) -> String {
    with_prefixes(&format!(
        "SELECT ?p ?y WHERE {{ ?p ont:pubYear ?y . FILTER (?y >= {min_year}) }}"
    ))
}

/// A randomized mixed update workload over the id space of a database
/// populated by [`crate::data::populate`]: ~60% inserts of new authors,
/// ~20% deletes of generated emails, ~20% email MODIFYs. Deterministic
/// per seed; inserted ids do not collide with generated ones.
pub fn mixed_updates(count: usize, existing_authors: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_new_id = 1_000_000; // far above generator ids
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let roll: f64 = rng.gen();
        if roll < 0.6 || existing_authors == 0 {
            let id = next_new_id;
            next_new_id += 1;
            out.push(insert_author(id, rng.gen_range(0..4), None));
        } else if roll < 0.8 {
            let id = ID_BASE + rng.gen_range(0..existing_authors) as i64;
            out.push(delete_author_email(id));
        } else {
            let id = ID_BASE + rng.gen_range(0..existing_authors) as i64;
            out.push(modify_author_email(id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::namespace::PrefixMap;

    fn parses(text: &str) {
        sparql::parse_update_with_prefixes(text, PrefixMap::common())
            .unwrap_or_else(|e| panic!("workload text must parse: {e}\n{text}"));
    }

    #[test]
    fn generated_updates_parse() {
        parses(&insert_author(1, 4, Some(2)));
        parses(&insert_author(1, 0, None));
        parses(&insert_complete_dataset(500));
        parses(&delete_author_email(3));
        parses(&modify_author_email(3));
        parses(&modify_team_members(2, "Prof"));
    }

    #[test]
    fn generated_queries_parse() {
        for q in [
            select_authors_with_team(),
            select_publications_with_authors(),
            select_recent_publications(2000),
        ] {
            sparql::parse_query_with_prefixes(&q, PrefixMap::common()).unwrap();
        }
    }

    #[test]
    fn mixed_workload_is_deterministic_and_parses() {
        let w1 = mixed_updates(50, 100, 9);
        let w2 = mixed_updates(50, 100, 9);
        assert_eq!(w1, w2);
        for u in &w1 {
            parses(u);
        }
    }

    #[test]
    fn mixed_workload_executes_against_populated_endpoint() {
        let mut db = crate::database();
        let spec = crate::data::Spec {
            authors: 20,
            ..crate::data::Spec::scaled(20)
        };
        crate::data::populate(&mut db, &spec, 1);
        let mut ep = ontoaccess::Endpoint::new(db, crate::mapping()).unwrap();
        let mut ok = 0;
        let mut rejected = 0;
        for update in mixed_updates(30, 20, 2) {
            match ep.execute_update(&update) {
                Ok(_) => ok += 1,
                // Deletes/modifies may target authors without email —
                // legitimate rejections, still exercising the checker.
                Err(_) => rejected += 1,
            }
        }
        assert!(
            ok > 0,
            "some updates must succeed (got {rejected} rejections)"
        );
    }
}
