//! Umbrella crate for the OntoAccess reproduction of Hert, Reif, Gall:
//! *Updating Relational Data via SPARQL/Update* (EDBT 2010).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single package:
//!
//! * [`rdf`] — RDF term model, indexed graph, Turtle/N-Triples I/O
//! * [`sparql`] — SPARQL + SPARQL/Update parser, algebra, evaluator
//! * [`rel`] — in-memory relational engine with SQL DML
//! * [`r3m`] — the update-aware RDB→RDF mapping language
//! * [`ontoaccess`] — the mediator: SPARQL/Update → SQL translation
//! * [`fixtures`] — the paper's publication use case and workload generators
//!
//! # Quickstart
//!
//! ```
//! use sparql_update_rdb::fixtures;
//!
//! // Figure 1 schema + Table 1 mapping, preloaded with sample rows:
//! // a shared, thread-safe mediator (writes are exclusive
//! // transactions, reads are parallel sessions).
//! let mediator = fixtures::mediator_with_sample_data();
//! let outcome = mediator
//!     .execute_update(
//!         r#"
//!         PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!         PREFIX ex:   <http://example.org/db/>
//!         INSERT DATA { ex:author42 foaf:family_name "Lovelace" . }
//!         "#,
//!     )
//!     .expect("valid update");
//! assert!(outcome.statements_executed >= 1);
//! let readers = mediator.read(); // Send + Sync, one per worker thread
//! assert_eq!(
//!     readers
//!         .select(
//!             r#"
//!             PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!             SELECT ?x WHERE { ?x foaf:family_name "Lovelace" . }
//!             "#,
//!         )
//!         .unwrap()
//!         .len(),
//!     1
//! );
//! ```

pub use fixtures;
pub use ontoaccess;
pub use r3m;
pub use rdf;
pub use rel;
pub use sparql;
