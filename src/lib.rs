//! Umbrella crate for the OntoAccess reproduction of Hert, Reif, Gall:
//! *Updating Relational Data via SPARQL/Update* (EDBT 2010).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single package:
//!
//! * [`rdf`] — RDF term model, indexed graph, Turtle/N-Triples I/O
//! * [`sparql`] — SPARQL + SPARQL/Update parser, algebra, evaluator
//! * [`rel`] — in-memory relational engine with SQL DML
//! * [`r3m`] — the update-aware RDB→RDF mapping language
//! * [`dur`] — durability: write-ahead log, snapshots, crash recovery
//! * [`ontoaccess`] — the mediator: SPARQL/Update → SQL translation
//! * [`ontoaccess_server`] — the SPARQL 1.1 Protocol HTTP server over the mediator
//! * [`fixtures`] — the paper's publication use case and workload generators
//!
//! # Quickstart
//!
//! ```
//! use sparql_update_rdb::fixtures;
//!
//! // Figure 1 schema + Table 1 mapping, preloaded with sample rows:
//! // a shared, thread-safe mediator (writes are exclusive
//! // transactions, reads are parallel sessions).
//! let mediator = fixtures::mediator_with_sample_data();
//! let outcome = mediator
//!     .execute_update(
//!         r#"
//!         PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!         PREFIX ex:   <http://example.org/db/>
//!         INSERT DATA { ex:author42 foaf:family_name "Lovelace" . }
//!         "#,
//!     )
//!     .expect("valid update");
//! assert!(outcome.statements_executed >= 1);
//! let readers = mediator.read(); // Send + Sync, one per worker thread
//! assert_eq!(
//!     readers
//!         .select(
//!             r#"
//!             PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!             SELECT ?x WHERE { ?x foaf:family_name "Lovelace" . }
//!             "#,
//!         )
//!         .unwrap()
//!         .len(),
//!     1
//! );
//! ```
//!
//! # Serving HTTP
//!
//! The same mediator speaks the SPARQL 1.1 Protocol over HTTP
//! (`ontoaccess-cli --serve <addr>`, or [`ontoaccess_server::serve`]
//! in-process):
//!
//! ```no_run
//! use sparql_update_rdb::{fixtures, ontoaccess_server};
//!
//! let handle = ontoaccess_server::serve(
//!     fixtures::mediator_with_sample_data(),
//!     "127.0.0.1:7878",
//!     ontoaccess_server::ServerConfig::default(),
//! )
//! .unwrap();
//! println!("listening on http://{}/", handle.addr());
//! handle.join();
//! ```
//!
//! and a client session looks like:
//!
//! ```text
//! $ curl 'http://127.0.0.1:7878/sparql?query=PREFIX%20foaf%3A%20%3Chttp%3A%2F%2Fxmlns.com%2Ffoaf%2F0.1%2F%3E%20SELECT%20%3Fx%20WHERE%20%7B%20%3Fx%20a%20foaf%3APerson%20.%20%7D'
//! {"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"uri","value":"http://example.org/db/author6"}}, …]}}
//!
//! $ curl -X POST http://127.0.0.1:7878/update \
//!        -H 'Content-Type: application/sparql-update' \
//!        --data-binary 'PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!   PREFIX ex: <http://example.org/db/>
//!   INSERT DATA { ex:author8 foaf:family_name "Gall" . }'
//! _:report a fb:Confirmation ;
//!          fb:operation "INSERT DATA" ;
//!          fb:rowsAffected "1"^^xsd:integer .
//! ```

pub use dur;
pub use fixtures;
pub use obs;
pub use ontoaccess;
pub use ontoaccess_server;
pub use r3m;
pub use rdf;
pub use rel;
pub use repl;
pub use sparql;
