//! `ontoaccess` — the mediator as a console *or* an HTTP server.
//!
//! Like the paper's prototype, the engine is reachable over HTTP:
//! `--serve <addr>` boots the SPARQL 1.1 Protocol server of
//! `crates/server` over the same mediator. Without `--serve`, the
//! binary is an interactive console: type a SPARQL/Update operation or
//! a SPARQL query (end it with an empty line); the console prints the
//! generated SQL and the RDF feedback document, or the solution table
//! for queries.
//!
//! ```text
//! cargo run --bin ontoaccess-cli            # console, paper's sample data
//! cargo run --bin ontoaccess-cli -- --empty # empty Figure 1 database
//! cargo run --bin ontoaccess-cli -- --populate 200 --seed 7
//! cargo run --bin ontoaccess-cli -- --serve 127.0.0.1:7878 --workers 8
//! cargo run --bin ontoaccess-cli -- --data-dir ./data --serve 127.0.0.1:7878
//! cargo run --bin ontoaccess-cli -- --serve 127.0.0.1:7879 --replicate-from 127.0.0.1:7878
//! ```
//!
//! `--log-level LEVEL` (error/warn/info/debug/off, or `target=level`
//! pairs; env `ONTOACCESS_LOG` works too) turns on logfmt structured
//! logs on stderr. `--slow-query-ms N` sets the slow-query-log
//! threshold surfaced under `/status` (`0` records every query);
//! `--slow-query-capacity N` sizes that ring (default 32).
//!
//! `--data-dir DIR` makes committed updates durable: the directory
//! holds a write-ahead log plus snapshots, and booting on an existing
//! directory recovers the committed state (newest snapshot + WAL
//! replay, torn tail truncated). It works with and without `--serve`;
//! the `--empty`/`--populate` flags only decide the *base* state of a
//! fresh directory and are ignored once one exists.
//!
//! In server mode, query with any HTTP client:
//!
//! ```text
//! curl 'http://127.0.0.1:7878/sparql?query=SELECT%20%3Fx%20WHERE%20%7B%20%3Fx%20a%20%3Chttp://xmlns.com/foaf/0.1/Person%3E%20%7D'
//! curl -X POST http://127.0.0.1:7878/update \
//!      -H 'Content-Type: application/sparql-update' --data-binary @update.ru
//! ```
//!
//! Console commands: `.help`, `.dump` (RDF view as Turtle), `.tables`
//! (row counts), `.sql <stmt>` (raw SQL against the engine), `.quit`.

use std::io::{BufRead, Write};

use sparql_update_rdb::fixtures;
use sparql_update_rdb::obs;
use sparql_update_rdb::ontoaccess::Endpoint;
use sparql_update_rdb::ontoaccess_server::{serve, ServerConfig};
use sparql_update_rdb::rdf;
use sparql_update_rdb::repl;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = Options::parse(&args);
    if let Some(leader) = &options.replicate_from {
        run_replica(leader, &options);
        return;
    }
    let endpoint = build_endpoint(&options);
    if let Some(addr) = &options.serve {
        run_server(endpoint, addr, &options);
        return;
    }
    let mut endpoint = endpoint;
    println!("OntoAccess console — publication database ready.");
    println!("Enter SPARQL/Update or SPARQL queries (finish with an empty line).");
    println!("Commands: .help .dump .tables .sql <stmt> .quit");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let Some(request) = read_request(&mut lines) else {
            return;
        };
        let trimmed = request.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(command) = trimmed.strip_prefix('.') {
            if !run_command(&mut endpoint, command) {
                return;
            }
            continue;
        }
        dispatch(&mut endpoint, trimmed);
    }
}

// Parsed command line.
struct Options {
    empty: bool,
    populate: Option<usize>,
    seed: u64,
    serve: Option<String>,
    workers: usize,
    data_dir: Option<String>,
    replicate_from: Option<String>,
    slow_query_ms: u64,
    slow_query_capacity: usize,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut options = Options {
            empty: false,
            populate: None,
            seed: 42,
            serve: None,
            workers: 4,
            data_dir: None,
            replicate_from: None,
            slow_query_ms: ServerConfig::default().slow_query_ms,
            slow_query_capacity: ServerConfig::default().slow_query_capacity,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--empty" => options.empty = true,
                "--populate" => {
                    options.populate = iter.next().and_then(|v| v.parse().ok()).or(Some(100));
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        options.seed = v;
                    }
                }
                "--serve" => match iter.next() {
                    Some(addr) => options.serve = Some(addr.clone()),
                    None => {
                        eprintln!("--serve needs an address, e.g. --serve 127.0.0.1:7878");
                        std::process::exit(2);
                    }
                },
                "--workers" => {
                    if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                        options.workers = v;
                    }
                }
                "--data-dir" => match iter.next() {
                    Some(dir) => options.data_dir = Some(dir.clone()),
                    None => {
                        eprintln!("--data-dir needs a directory, e.g. --data-dir ./data");
                        std::process::exit(2);
                    }
                },
                "--replicate-from" => match iter.next() {
                    Some(addr) => options.replicate_from = Some(addr.clone()),
                    None => {
                        eprintln!(
                            "--replicate-from needs the leader address, \
                             e.g. --replicate-from 127.0.0.1:7878"
                        );
                        std::process::exit(2);
                    }
                },
                "--log-level" => match iter.next() {
                    Some(level) => {
                        if let Err(e) = obs::set_log_filter_str(level) {
                            eprintln!("--log-level: {e}");
                            std::process::exit(2);
                        }
                    }
                    None => {
                        eprintln!("--log-level needs a level: error, warn, info, debug or off");
                        std::process::exit(2);
                    }
                },
                "--slow-query-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                    Some(ms) => options.slow_query_ms = ms,
                    None => {
                        eprintln!("--slow-query-ms needs a threshold in milliseconds (u64)");
                        std::process::exit(2);
                    }
                },
                "--slow-query-capacity" => match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) => options.slow_query_capacity = n,
                    None => {
                        eprintln!("--slow-query-capacity needs an entry count (usize)");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!(
                        "unknown argument {other:?} (supported: --empty, --populate N, \
                         --seed S, --serve ADDR, --workers N, --data-dir DIR, \
                         --replicate-from ADDR, --log-level LEVEL, --slow-query-ms N, \
                         --slow-query-capacity N)"
                    );
                    std::process::exit(2);
                }
            }
        }
        if options.replicate_from.is_some() {
            if options.serve.is_none() {
                eprintln!("--replicate-from requires --serve (a replica only serves HTTP reads)");
                std::process::exit(2);
            }
            if options.data_dir.is_some() {
                eprintln!(
                    "--replicate-from conflicts with --data-dir: a replica's state \
                     comes from the leader, not a local data directory"
                );
                std::process::exit(2);
            }
        }
        options
    }
}

fn build_endpoint(options: &Options) -> Endpoint {
    let base_db = || {
        if let Some(n) = options.populate {
            fixtures::data::populated_database(n, options.seed)
        } else if options.empty {
            fixtures::database()
        } else {
            let mut db = fixtures::database();
            fixtures::seed_paper_rows(&mut db);
            db
        }
    };
    let Some(dir) = &options.data_dir else {
        return Endpoint::new(base_db(), fixtures::mapping()).expect("use case mapping is valid");
    };
    // Durable boot: open-or-recover the data directory. The base
    // database only matters on a fresh directory (it becomes
    // snapshot 0); afterwards the recovered state wins.
    match Endpoint::open_durable(dir, base_db(), fixtures::mapping()) {
        Ok((endpoint, report)) => {
            let snapshot = report
                .snapshot_seq
                .map_or_else(|| "none".to_owned(), |seq| seq.to_string());
            println!(
                "data dir {dir}: snapshot {snapshot}, {} commit(s) replayed, \
                 {} row op(s), {} torn byte(s) truncated",
                report.commits_replayed, report.rows_replayed, report.truncated_bytes
            );
            endpoint
        }
        Err(e) => {
            eprintln!("cannot open data dir {dir}: {e}");
            std::process::exit(1);
        }
    }
}

// `--replicate-from`: bootstrap a read replica from the leader's
// newest snapshot, tail its WAL, and serve read-only SPARQL. Updates
// sent here answer 409 naming the leader.
fn run_replica(leader: &str, options: &Options) {
    let addr = options
        .serve
        .as_deref()
        .expect("checked during argument parsing");
    println!("bootstrapping replica of {leader} ...");
    std::io::stdout().flush().ok();
    let (mediator, replicator) = match repl::Replicator::start(
        leader,
        fixtures::database(),
        fixtures::mapping(),
        repl::ReplicatorConfig::default(),
    ) {
        Ok(started) => started,
        Err(e) => {
            eprintln!("cannot replicate from {leader}: {e}");
            std::process::exit(1);
        }
    };
    let snap = replicator.status().snapshot();
    println!("replica bootstrapped at commit seq {}", snap.applied_seq);
    let config = ServerConfig {
        workers: options.workers.max(1),
        replication: Some(replicator.status()),
        slow_query_ms: options.slow_query_ms,
        slow_query_capacity: options.slow_query_capacity,
        ..ServerConfig::default()
    };
    let handle = match serve(mediator, addr, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on http://{}/", handle.addr());
    println!(
        "endpoints: /sparql /describe /dump /status /metrics (read-only replica) — Ctrl-C stops"
    );
    std::io::stdout().flush().ok();
    handle.join();
    replicator.stop();
}

// `--serve`: boot the SPARQL 1.1 Protocol server and run foreground.
fn run_server(endpoint: Endpoint, addr: &str, options: &Options) {
    let config = ServerConfig {
        workers: options.workers.max(1),
        slow_query_ms: options.slow_query_ms,
        slow_query_capacity: options.slow_query_capacity,
        ..ServerConfig::default()
    };
    let handle = match serve(endpoint.into_mediator(), addr, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The bound address line is machine-readable on purpose: scripts
    // (and the CI smoke step) bind port 0 and scrape the real port.
    println!("listening on http://{}/", handle.addr());
    println!("endpoints: /sparql /update /describe /dump /status /metrics — Ctrl-C stops");
    std::io::stdout().flush().ok();
    handle.join();
}

// Read lines until an empty line; single-line `.command`s return
// immediately.
fn read_request(lines: &mut impl Iterator<Item = std::io::Result<String>>) -> Option<String> {
    let mut buffer = String::new();
    loop {
        match lines.next() {
            None => {
                return if buffer.trim().is_empty() {
                    None
                } else {
                    Some(buffer)
                }
            }
            Some(Err(_)) => return None,
            Some(Ok(line)) => {
                if buffer.trim().is_empty() && line.trim().starts_with('.') {
                    return Some(line);
                }
                if line.trim().is_empty() {
                    return Some(buffer);
                }
                buffer.push_str(&line);
                buffer.push('\n');
            }
        }
    }
}

fn run_command(endpoint: &mut Endpoint, command: &str) -> bool {
    let (name, rest) = command
        .split_once(char::is_whitespace)
        .unwrap_or((command, ""));
    match name {
        "quit" | "exit" | "q" => return false,
        "help" => {
            println!(".dump         print the database's RDF view as Turtle");
            println!(".tables       print row counts per table");
            println!(".sql <stmt>   run a raw SQL statement on the engine");
            println!(".quit         leave the console");
            println!("anything else is parsed as SPARQL/Update or SPARQL.");
        }
        "dump" => match endpoint.materialize() {
            Ok(graph) => println!("{}", rdf::turtle::write(&graph, endpoint.prefixes())),
            Err(e) => println!("error: {e}"),
        },
        "tables" => {
            for table in endpoint.database().schema().tables() {
                println!(
                    "{:<24} {:>6} rows",
                    table.name,
                    endpoint.database().row_count(&table.name).unwrap_or(0)
                );
            }
        }
        // Raw SQL is the console's engine-debugging bypass — the same
        // test-support hatch the fixtures use, deliberately not part of
        // the documented mediator surface.
        "sql" => {
            if endpoint.mediator().is_durable() {
                println!(
                    "note: .sql bypasses the mediator, so these changes skip the \
                     write-ahead log and are lost on restart (they persist only if \
                     a later snapshot captures them)"
                );
            }
            match rel::sql::execute_sql(&mut endpoint.database_mut_for_tests(), rest) {
                Ok(rel::sql::ExecOutcome::Affected(n)) => println!("{n} row(s) affected"),
                Ok(rel::sql::ExecOutcome::Rows(rs)) => print_result_set(&rs),
                Err(e) => println!("error: {e}"),
            }
        }
        other => println!("unknown command .{other} — try .help"),
    }
    true
}

fn dispatch(endpoint: &mut Endpoint, request: &str) {
    if first_word_is_query(request) {
        match endpoint.execute_query(request) {
            Ok(sparql::QueryOutcome::Boolean(b)) => println!("ASK → {b}"),
            Ok(sparql::QueryOutcome::Solutions(solutions)) => {
                println!(
                    "{} solution(s) over ?{}",
                    solutions.len(),
                    solutions.variables.join(" ?")
                );
                for binding in &solutions.bindings {
                    let row: Vec<String> = solutions
                        .variables
                        .iter()
                        .map(|v| {
                            binding
                                .get(v)
                                .map(|t| rdf::turtle::render_term(t, endpoint.prefixes()))
                                .unwrap_or_else(|| "—".into())
                        })
                        .collect();
                    println!("    {}", row.join("  |  "));
                }
            }
            Err(e) => println!("error: {e}"),
        }
    } else {
        let (feedback, result) = endpoint.execute_update_with_feedback(request);
        if let Ok(outcome) = &result {
            println!("-- SQL executed:");
            for stmt in &outcome.statements {
                println!("    {stmt}");
            }
        }
        println!("-- feedback:");
        println!("{}", feedback.to_turtle());
    }
}

// Queries may start with PREFIX lines; look for the first keyword.
fn first_word_is_query(request: &str) -> bool {
    for line in request.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.to_ascii_uppercase().starts_with("PREFIX")
            || trimmed.to_ascii_uppercase().starts_with("BASE")
        {
            continue;
        }
        let upper = trimmed.to_ascii_uppercase();
        return upper.starts_with("SELECT") || upper.starts_with("ASK");
    }
    false
}

fn print_result_set(rs: &rel::sql::ResultSet) {
    println!("{}", rs.columns.join(" | "));
    for row in &rs.rows {
        let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", rendered.join(" | "));
    }
    println!("({} row(s))", rs.rows.len());
}
