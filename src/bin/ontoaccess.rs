//! `ontoaccess` — interactive mediator console.
//!
//! The paper's prototype exposes the translator behind an HTTP endpoint;
//! this binary exposes the same engine behind a terminal. Type a
//! SPARQL/Update operation or a SPARQL query (end it with an empty
//! line); the console prints the generated SQL and the RDF feedback
//! document, or the solution table for queries.
//!
//! ```text
//! cargo run --bin ontoaccess-cli            # paper's sample data
//! cargo run --bin ontoaccess-cli -- --empty # empty Figure 1 database
//! cargo run --bin ontoaccess-cli -- --populate 200 --seed 7
//! ```
//!
//! Console commands: `.help`, `.dump` (RDF view as Turtle), `.tables`
//! (row counts), `.sql <stmt>` (raw SQL against the engine), `.quit`.

use std::io::{BufRead, Write};

use sparql_update_rdb::fixtures;
use sparql_update_rdb::ontoaccess::Endpoint;
use sparql_update_rdb::rdf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoint = build_endpoint(&args);
    println!("OntoAccess console — publication database ready.");
    println!("Enter SPARQL/Update or SPARQL queries (finish with an empty line).");
    println!("Commands: .help .dump .tables .sql <stmt> .quit");

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let Some(request) = read_request(&mut lines) else {
            return;
        };
        let trimmed = request.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(command) = trimmed.strip_prefix('.') {
            if !run_command(&mut endpoint, command) {
                return;
            }
            continue;
        }
        dispatch(&mut endpoint, trimmed);
    }
}

fn build_endpoint(args: &[String]) -> Endpoint {
    let mut iter = args.iter();
    let mut empty = false;
    let mut populate: Option<usize> = None;
    let mut seed = 42u64;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--empty" => empty = true,
            "--populate" => {
                populate = iter.next().and_then(|v| v.parse().ok()).or(Some(100));
            }
            "--seed" => {
                if let Some(v) = iter.next().and_then(|v| v.parse().ok()) {
                    seed = v;
                }
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} (supported: --empty, --populate N, --seed S)"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(n) = populate {
        let db = fixtures::data::populated_database(n, seed);
        Endpoint::new(db, fixtures::mapping()).expect("use case mapping is valid")
    } else if empty {
        fixtures::endpoint()
    } else {
        fixtures::endpoint_with_sample_data()
    }
}

// Read lines until an empty line; single-line `.command`s return
// immediately.
fn read_request(lines: &mut impl Iterator<Item = std::io::Result<String>>) -> Option<String> {
    let mut buffer = String::new();
    loop {
        match lines.next() {
            None => {
                return if buffer.trim().is_empty() {
                    None
                } else {
                    Some(buffer)
                }
            }
            Some(Err(_)) => return None,
            Some(Ok(line)) => {
                if buffer.trim().is_empty() && line.trim().starts_with('.') {
                    return Some(line);
                }
                if line.trim().is_empty() {
                    return Some(buffer);
                }
                buffer.push_str(&line);
                buffer.push('\n');
            }
        }
    }
}

fn run_command(endpoint: &mut Endpoint, command: &str) -> bool {
    let (name, rest) = command
        .split_once(char::is_whitespace)
        .unwrap_or((command, ""));
    match name {
        "quit" | "exit" | "q" => return false,
        "help" => {
            println!(".dump         print the database's RDF view as Turtle");
            println!(".tables       print row counts per table");
            println!(".sql <stmt>   run a raw SQL statement on the engine");
            println!(".quit         leave the console");
            println!("anything else is parsed as SPARQL/Update or SPARQL.");
        }
        "dump" => match endpoint.materialize() {
            Ok(graph) => println!("{}", rdf::turtle::write(&graph, endpoint.prefixes())),
            Err(e) => println!("error: {e}"),
        },
        "tables" => {
            for table in endpoint.database().schema().tables() {
                println!(
                    "{:<24} {:>6} rows",
                    table.name,
                    endpoint.database().row_count(&table.name).unwrap_or(0)
                );
            }
        }
        // Raw SQL is the console's engine-debugging bypass — the same
        // test-support hatch the fixtures use, deliberately not part of
        // the documented mediator surface.
        "sql" => match rel::sql::execute_sql(&mut endpoint.database_mut_for_tests(), rest) {
            Ok(rel::sql::ExecOutcome::Affected(n)) => println!("{n} row(s) affected"),
            Ok(rel::sql::ExecOutcome::Rows(rs)) => print_result_set(&rs),
            Err(e) => println!("error: {e}"),
        },
        other => println!("unknown command .{other} — try .help"),
    }
    true
}

fn dispatch(endpoint: &mut Endpoint, request: &str) {
    if first_word_is_query(request) {
        match endpoint.execute_query(request) {
            Ok(sparql::QueryOutcome::Boolean(b)) => println!("ASK → {b}"),
            Ok(sparql::QueryOutcome::Solutions(solutions)) => {
                println!(
                    "{} solution(s) over ?{}",
                    solutions.len(),
                    solutions.variables.join(" ?")
                );
                for binding in &solutions.bindings {
                    let row: Vec<String> = solutions
                        .variables
                        .iter()
                        .map(|v| {
                            binding
                                .get(v)
                                .map(|t| rdf::turtle::render_term(t, endpoint.prefixes()))
                                .unwrap_or_else(|| "—".into())
                        })
                        .collect();
                    println!("    {}", row.join("  |  "));
                }
            }
            Err(e) => println!("error: {e}"),
        }
    } else {
        let (feedback, result) = endpoint.execute_update_with_feedback(request);
        if let Ok(outcome) = &result {
            println!("-- SQL executed:");
            for stmt in &outcome.statements {
                println!("    {stmt}");
            }
        }
        println!("-- feedback:");
        println!("{}", feedback.to_turtle());
    }
}

// Queries may start with PREFIX lines; look for the first keyword.
fn first_word_is_query(request: &str) -> bool {
    for line in request.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.to_ascii_uppercase().starts_with("PREFIX")
            || trimmed.to_ascii_uppercase().starts_with("BASE")
        {
            continue;
        }
        let upper = trimmed.to_ascii_uppercase();
        return upper.starts_with("SELECT") || upper.starts_with("ASK");
    }
    false
}

fn print_result_set(rs: &rel::sql::ResultSet) {
    println!("{}", rs.columns.join(" | "));
    for row in &rs.rows {
        let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", rendered.join(" | "));
    }
    println!("({} row(s))", rs.rows.len());
}
