//! Persistence walkthrough: open a data directory, commit updates,
//! drop everything, reopen the same directory, and verify the
//! committed state survived — the doc-friendly tour of the durability
//! subsystem (`dur`: write-ahead log + snapshots + crash recovery).
//!
//! Run with: `cargo run --example persistence`

use sparql_update_rdb::fixtures;
use sparql_update_rdb::ontoaccess::Mediator;

fn main() {
    // A scratch data directory (any path works; reuse it to keep data).
    let dir = fixtures::scratch_dir("persistence-example");

    // ------------------------------------------------------------------
    // 1. First boot: the directory is fresh, so the initial database
    //    (here: the paper's Figure 1 schema + sample rows) becomes the
    //    durable base state, checkpointed as snapshot 0.
    // ------------------------------------------------------------------
    {
        let mut base = fixtures::database();
        fixtures::seed_paper_rows(&mut base);
        let (mediator, report) =
            Mediator::open_durable(&dir, base, fixtures::mapping()).expect("data dir opens");
        println!(
            "first boot: snapshot {:?}, {} commit(s) replayed",
            report.snapshot_seq, report.commits_replayed
        );

        // Committed updates are write-ahead logged and fsynced before
        // the commit call returns — from here on, they survive a crash.
        mediator
            .execute_update(
                r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
                   PREFIX ex:   <http://example.org/db/>
                   INSERT DATA { ex:author8 foaf:family_name "Gall" . }"#,
            )
            .expect("valid update");

        // A rejected update rolls back and leaves no trace in the log.
        let rejected = mediator.execute_update(
            r#"PREFIX ont: <http://example.org/ontology#>
               PREFIX ex:  <http://example.org/db/>
               INSERT DATA { ex:author8 ont:team ex:team424242 . }"#,
        );
        println!("dangling insert rejected: {}", rejected.is_err());

        let stats = mediator.durability_stats().expect("durable mediator");
        println!(
            "wal: {} byte(s), {} commit(s) appended, {} fsync(s)",
            stats.wal_bytes, stats.commits_appended, stats.wal_syncs
        );
        // The mediator is dropped here — as abruptly as a crash, since
        // acknowledged commits never depend on a clean shutdown.
    }

    // ------------------------------------------------------------------
    // 2. Reopen the same directory: recovery loads the newest snapshot
    //    and replays the committed WAL suffix.
    // ------------------------------------------------------------------
    {
        let mut base = fixtures::database();
        fixtures::seed_paper_rows(&mut base); // ignored: the dir exists
        let (mediator, report) =
            Mediator::open_durable(&dir, base, fixtures::mapping()).expect("data dir reopens");
        println!(
            "reopen: snapshot {:?}, {} commit(s) replayed, {} torn byte(s) truncated",
            report.snapshot_seq, report.commits_replayed, report.truncated_bytes
        );

        let survivors = mediator
            .select(
                r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
                   SELECT ?x WHERE { ?x foaf:family_name "Gall" . }"#,
            )
            .expect("valid query");
        assert_eq!(survivors.len(), 1, "the committed author survived");
        println!("committed author survived the restart");

        // An admin checkpoint materializes the state and truncates the
        // log (the HTTP server exposes this as POST /snapshot).
        let seq = mediator.checkpoint().expect("checkpoint succeeds");
        println!(
            "checkpoint at commit {seq}; wal now {} byte(s)",
            mediator.durability_stats().expect("durable").wal_bytes
        );
    }

    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("done");
}
