//! Publication catalog scenario: the enterprise-integration story the
//! paper's introduction motivates. A Semantic Web client maintains a
//! publication catalog — complete-dataset inserts spanning all six
//! tables (Listing 15 → Listing 16, with FK-ordered SQL), cross-entity
//! queries, and a MODIFY-based correction — while the data stays in the
//! relational database for existing SQL applications.
//!
//! Run with: `cargo run --example publication_catalog`

use sparql_update_rdb::fixtures;

fn main() {
    let mut endpoint = fixtures::endpoint();

    // One atomic INSERT DATA covering publication + author + team +
    // pubtype + publisher + authorship (the paper's Listing 15).
    println!("=== Complete dataset insert (Listing 15 shape) ===");
    let listing_15 = r#"INSERT DATA {
        ex:pub12 dc:title "Relational Databases as Semantic Web Endpoints" ;
          ont:pubYear "2009" ;
          ont:pubType ex:pubtype4 ;
          dc:publisher ex:publisher3 ;
          dc:creator ex:author6 .

        ex:author6 foaf:title "Mr" ;
          foaf:firstName "Matthias" ;
          foaf:family_name "Hert" ;
          foaf:mbox <mailto:hert@ifi.uzh.ch> ;
          ont:team ex:team5 .

        ex:team5 foaf:name "Software Engineering" ;
          ont:teamCode "SEAL" .

        ex:pubtype4 ont:type "inproceedings" .

        ex:publisher3 ont:name "Springer" .
    }"#;
    let outcome = endpoint.execute_update(listing_15).expect("valid insert");
    println!(
        "executed {} SQL statements, FK-sorted:",
        outcome.statements_executed
    );
    for stmt in &outcome.statements {
        println!("    {stmt}");
    }

    // Grow the catalog with generated entries.
    for base in [20, 21, 22] {
        endpoint
            .execute_update(&fixtures::workload::insert_complete_dataset(base))
            .expect("generated dataset inserts are valid");
    }
    println!(
        "\ncatalog now holds {} publications, {} authors, {} authorship links",
        endpoint.database().row_count("publication").unwrap(),
        endpoint.database().row_count("author").unwrap(),
        endpoint.database().row_count("publication_author").unwrap(),
    );

    // Cross-entity query: publications with their creators' last names.
    println!("\n=== Catalog listing (publication ↔ creator join) ===");
    let solutions = endpoint
        .select(
            "SELECT ?title ?last WHERE { \
               ?p dc:title ?title ; dc:creator ?a . \
               ?a foaf:family_name ?last . }",
        )
        .expect("join query succeeds");
    for binding in &solutions.bindings {
        println!("    {} — {}", binding["title"], binding["last"]);
    }

    // A correction via MODIFY: Springer was wrong for pub20; re-point it
    // at publisher 21 (created by the generated dataset for base 21).
    println!("\n=== MODIFY — move pub20 to a different publisher ===");
    let outcome = endpoint
        .execute_update(
            r#"MODIFY
               DELETE { ex:pub20 dc:publisher ?pub . }
               INSERT { ex:pub20 dc:publisher ex:publisher21 . }
               WHERE  { ex:pub20 dc:publisher ?pub . }"#,
        )
        .expect("modify succeeds");
    let report = outcome.modify.expect("MODIFY report");
    println!("WHERE clause translated to: {}", report.select_sql);
    println!("bindings: {}", report.bindings);
    for stmt in &outcome.statements {
        println!("    {stmt}");
    }

    // Year-filtered query.
    println!("\n=== Publications since 2009 ===");
    let solutions = endpoint
        .select("SELECT ?p ?y WHERE { ?p ont:pubYear ?y . FILTER (?y >= 2009) }")
        .expect("filter query succeeds");
    println!("    {} result(s)", solutions.len());
}
