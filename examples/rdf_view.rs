//! RDF-view scenario: OntoAccess vs. a native triple store, side by
//! side. The same SPARQL/Update stream is applied to (a) the mediator
//! over the relational database and (b) an in-memory native triple
//! store seeded with the materialized RDF view. After every operation
//! the two views are compared — the semantic-equivalence property the
//! translation is built on (and the paper's §3 framing of OntoAccess as
//! a constrained alternative to a native store).
//!
//! Run with: `cargo run --example rdf_view`

use sparql_update_rdb::fixtures;
use sparql_update_rdb::rdf;
use sparql_update_rdb::sparql;

fn main() {
    let mut endpoint = fixtures::endpoint_with_sample_data();
    let mut native = endpoint.materialize().expect("materialization succeeds");
    println!(
        "start: RDF view holds {} triples across {} tables",
        native.len(),
        endpoint.database().schema().len()
    );

    let updates = [
        // New team with explicit typing (the relational view entails
        // rdf:type triples, so equivalent native updates assert them).
        r#"INSERT DATA { ex:team9 a foaf:Group ; foaf:name "Data Systems" ; ont:teamCode "DS" . }"#,
        // New author joining that team.
        r#"INSERT DATA { ex:author9 a foaf:Person ; foaf:family_name "Gall" ;
             foaf:firstName "Harald" ; ont:team ex:team9 . }"#,
        // Authorship for the existing sample publication.
        r#"INSERT DATA { ex:pub1 dc:creator ex:author9 . }"#,
        // Email replacement via MODIFY (Listing 11 shape).
        r#"MODIFY
           DELETE { ?x foaf:mbox ?m . }
           INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
           WHERE  { ?x foaf:family_name "Hert" ; foaf:mbox ?m . }"#,
        // Remove an optional attribute.
        r#"DELETE DATA { ex:author6 foaf:title "Mr" . }"#,
    ];

    for (i, update) in updates.iter().enumerate() {
        endpoint.execute_update(update).expect("valid update");
        let op = sparql::parse_update_with_prefixes(update, endpoint.prefixes().clone())
            .expect("parses");
        sparql::apply(&mut native, &op).expect("native update succeeds");

        let materialized = endpoint.materialize().expect("materialization succeeds");
        assert_eq!(
            materialized, native,
            "the two views diverged after update {i}"
        );
        println!(
            "update {}: views agree ({} triples)",
            i + 1,
            materialized.len()
        );
    }

    println!("\nfinal RDF view (N-Triples, excerpt):");
    let dump = rdf::ntriples::write(&native);
    for line in dump.lines().take(12) {
        println!("    {line}");
    }
    println!("    … {} triples total", native.len());

    // The native store accepts updates the mediator must reject — the
    // conceptual gap of §3 in one picture.
    let invalid = r#"INSERT DATA { ex:author10 foaf:firstName "NoLastName" . }"#;
    let op =
        sparql::parse_update_with_prefixes(invalid, endpoint.prefixes().clone()).expect("parses");
    let mut free_store = native.clone();
    sparql::apply(&mut free_store, &op).expect("native store takes anything");
    let rejected = endpoint.execute_update(invalid).is_err();
    println!(
        "\nconstraint gap: native store accepted the lastname-less author, \
         mediator rejected it: {rejected}"
    );
}
