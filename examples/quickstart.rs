//! Quickstart: stand up the OntoAccess mediator over the paper's
//! publication database and run the paper's own example requests
//! (Listings 9, 13, 17), printing the SQL each one translates to.
//!
//! Run with: `cargo run --example quickstart`

use sparql_update_rdb::fixtures;

fn main() {
    // Figure 1 schema + Table 1 mapping; team 5 ("Software Engineering")
    // is among the preloaded sample rows, as Listing 9 assumes. We first
    // remove the preloaded author6 so Listing 9 inserts a fresh entity.
    let mut endpoint = fixtures::endpoint_with_sample_data();
    endpoint
        .execute_update(
            r#"DELETE DATA {
                 ex:author6 a foaf:Person ;
                   foaf:title "Mr" ;
                   foaf:firstName "Matthias" ;
                   foaf:family_name "Hert" ;
                   foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                   ont:team ex:team5 .
                 ex:pub1 dc:creator ex:author6 .
               }"#,
        )
        .expect("clearing the sample author succeeds");

    let requests = [
        (
            "Listing 9 — INSERT DATA for a new author",
            r#"INSERT DATA {
                 ex:author6 foaf:title "Mr" ;
                   foaf:firstName "Matthias" ;
                   foaf:family_name "Hert" ;
                   foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                   ont:team ex:team5 .
               }"#,
        ),
        (
            "Listing 13 — INSERT DATA for a new team",
            r#"INSERT DATA {
                 ex:team14 foaf:name "Database Technology II" ;
                   ont:teamCode "DBTG2" .
               }"#,
        ),
        (
            "Listing 17 — DELETE DATA removing the email",
            r#"DELETE DATA {
                 ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> .
               }"#,
        ),
    ];

    for (label, request) in requests {
        println!("=== {label} ===");
        println!("{}", request.trim());
        match endpoint.execute_update(request) {
            Ok(outcome) => {
                println!(
                    "--- translated SQL ({} statement(s)):",
                    outcome.statements_executed
                );
                for stmt in &outcome.statements {
                    println!("    {stmt}");
                }
            }
            Err(e) => println!("--- rejected: {e}"),
        }
        println!();
    }

    // Read back through the SPARQL interface.
    println!("=== SELECT — who is in team SEAL? ===");
    let solutions = endpoint
        .select("SELECT ?name WHERE { ?x ont:team ex:team5 ; foaf:family_name ?name . }")
        .expect("query succeeds");
    for binding in &solutions.bindings {
        println!("    {}", binding["name"]);
    }

    println!("\n=== RDF view of the whole database (Turtle) ===");
    let graph = endpoint.materialize().expect("materialization succeeds");
    println!("{}", rdf::turtle::write(&graph, endpoint.prefixes()));
}
