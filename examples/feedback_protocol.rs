//! Feedback protocol scenario (paper §3/§8): the constraints of the
//! relational schema surface as *semantically rich* rejections. Each
//! invalid request below is refused before touching the database, with a
//! machine-readable RDF feedback document naming the violated
//! constraint, the affected table/attribute, and a repair hint.
//!
//! Run with: `cargo run --example feedback_protocol`

use sparql_update_rdb::fixtures;

fn main() {
    let mut endpoint = fixtures::endpoint_with_sample_data();

    let invalid_requests = [
        (
            "Missing NOT NULL property (author without lastname)",
            r#"INSERT DATA { ex:author9 foaf:firstName "Ada" . }"#,
        ),
        (
            "Dangling foreign key (team 99 does not exist)",
            r#"INSERT DATA { ex:author9 foaf:family_name "Lovelace" ; ont:team ex:team99 . }"#,
        ),
        (
            "Type error (publication year is not an integer)",
            r#"INSERT DATA { ex:pub9 dc:title "T" ; ont:pubYear "next spring" . }"#,
        ),
        (
            "Unknown property for the table (teams have no mailbox)",
            r#"INSERT DATA { ex:team8 foaf:name "T8" ; foaf:mbox <mailto:t@x.ch> . }"#,
        ),
        (
            "Unmapped subject URI",
            r#"INSERT DATA { ex:wizard1 foaf:name "Gandalf" . }"#,
        ),
        (
            "Deleting a required value (lastname is NOT NULL)",
            r#"DELETE DATA { ex:author6 foaf:family_name "Hert" . }"#,
        ),
        (
            "Deleting a triple that is not present",
            r#"DELETE DATA { ex:author6 foaf:mbox <mailto:wrong@example.org> . }"#,
        ),
        (
            "Second value for a single-valued attribute",
            r#"INSERT DATA { ex:author6 foaf:family_name "Other" . }"#,
        ),
    ];

    for (label, request) in invalid_requests {
        println!("=== {label} ===");
        println!("{request}");
        let (feedback, result) = endpoint.execute_update_with_feedback(request);
        assert!(result.is_err(), "request is meant to be rejected");
        println!("--- feedback document (Turtle):");
        println!("{}", feedback.to_turtle());
    }

    // And one success, for contrast.
    println!("=== Valid request ===");
    let (feedback, result) = endpoint.execute_update_with_feedback(
        r#"INSERT DATA { ex:author9 foaf:family_name "Lovelace" . }"#,
    );
    assert!(result.is_ok());
    println!("{}", feedback.to_turtle());

    // Nothing from the rejected requests leaked into the database: a
    // read session over the same mediator sees the live state without
    // copying anything.
    let check: ontoaccess::ReadSession = endpoint.mediator().read();
    let gandalf = check
        .select("SELECT ?x WHERE { ?x foaf:name \"Gandalf\" . }")
        .expect("query succeeds");
    assert!(gandalf.is_empty());
    println!("database state verified: no partial effects from rejected requests");
}
