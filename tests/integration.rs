//! Cross-crate integration tests: mapping documents loaded from Turtle
//! drive the endpoint, the generator's mappings are usable end to end,
//! mixed workloads keep the two views consistent, and failures are
//! atomic.

use rdf::namespace::{foaf, PrefixMap};
use sparql_update_rdb::fixtures;
use sparql_update_rdb::ontoaccess::{Endpoint, OntoError};

#[test]
fn endpoint_from_turtle_mapping_document() {
    // Serialize the use case mapping to Turtle, reload it, and run the
    // paper's Listing 13 through an endpoint built from the reloaded
    // document — the full external-configuration path.
    let text = r3m::to_turtle(&fixtures::mapping());
    let mapping = r3m::from_turtle(&text).expect("serialized mapping reloads");
    let mut ep = Endpoint::new(fixtures::database(), mapping).expect("mapping validates");
    let outcome = ep
        .execute_update(
            r#"INSERT DATA { ex:team4 foaf:name "Database Technology" ; ont:teamCode "DBTG" . }"#,
        )
        .expect("update through reloaded mapping");
    assert_eq!(outcome.statements_executed, 1);
}

#[test]
fn generated_mapping_is_executable() {
    // §4: "A basic R3M mapping can be generated automatically from the
    // database schema". Generate one for the Figure 1 schema, rebind
    // author/lastname to FOAF, and run an update through it.
    let config = r3m::GeneratorConfig::new()
        .class_override("author", foaf::Person())
        .property_override("author", "lastname", foaf::family_name());
    let mapping = r3m::generate(&fixtures::schema(), &config).expect("generation succeeds");
    let mut ep = Endpoint::new(fixtures::database(), mapping).expect("generated mapping is valid");
    ep.execute_update(
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
         INSERT DATA { <http://example.org/db/author3> foaf:family_name \"Turing\" . }",
    )
    .expect("update through generated mapping");
    assert_eq!(ep.database().row_count("author").unwrap(), 1);
}

#[test]
fn mixed_workload_preserves_view_consistency() {
    // Apply a 120-operation generated workload; after every *accepted*
    // operation, query results through SQL translation must equal
    // results over the materialized graph.
    let mut db = fixtures::database();
    let spec = fixtures::data::Spec {
        authors: 30,
        ..fixtures::data::Spec::scaled(30)
    };
    fixtures::data::populate(&mut db, &spec, 17);
    let mut ep = Endpoint::new(db, fixtures::mapping()).unwrap();

    let mut accepted = 0;
    for update in fixtures::workload::mixed_updates(120, 30, 18) {
        if ep.execute_update(&update).is_ok() {
            accepted += 1;
        }
    }
    assert!(accepted >= 60, "workload mostly succeeds (got {accepted})");

    let graph = ep.materialize().unwrap();
    for q in [
        "SELECT ?x ?n WHERE { ?x foaf:family_name ?n . }",
        "SELECT ?x ?m WHERE { ?x foaf:mbox ?m . }",
        "SELECT ?x ?c WHERE { ?x ont:team ?t . ?t ont:teamCode ?c . }",
    ] {
        let mut relational = ep.select(q).unwrap();
        let query = sparql::parse_query_with_prefixes(q, ep.prefixes().clone()).unwrap();
        let sparql::Query::Select(select) = query else {
            panic!()
        };
        let mut native = sparql::evaluate_select(&graph, &select);
        relational.bindings.sort();
        native.bindings.sort();
        assert_eq!(relational.bindings, native.bindings, "query {q}");
    }
}

#[test]
fn failed_multi_statement_operation_is_atomic() {
    // A Listing 15-style insert whose last statement violates a
    // constraint (duplicate publication id) must leave no trace of the
    // earlier statements.
    let mut ep = fixtures::endpoint_with_sample_data();
    let before_counts: Vec<usize> = ["team", "author", "publication", "publisher"]
        .iter()
        .map(|t| ep.database().row_count(t).unwrap())
        .collect();
    // pub1 already exists with a different title → AttributeAlreadySet
    // during checking; craft instead a deeper failure: author with a
    // fresh id but a PK collision on the publication.
    let err = ep
        .execute_update(
            r#"INSERT DATA {
                 ex:team40 foaf:name "Fresh Team" .
                 ex:pub1 dc:title "A Different Title" .
               }"#,
        )
        .unwrap_err();
    assert!(matches!(err, OntoError::AttributeAlreadySet { .. }));
    let after_counts: Vec<usize> = ["team", "author", "publication", "publisher"]
        .iter()
        .map(|t| ep.database().row_count(t).unwrap())
        .collect();
    assert_eq!(before_counts, after_counts, "no partial effects");
}

#[test]
fn delete_respects_restrict_and_reports_database_error() {
    // team 5 is referenced by two authors: removing the row must fail
    // at the engine level (RESTRICT) and leave everything unchanged.
    let mut ep = fixtures::endpoint_with_sample_data();
    let err = ep
        .execute_update(
            r#"DELETE DATA { ex:team5 a foaf:Group ;
                 foaf:name "Software Engineering" ; ont:teamCode "SEAL" . }"#,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        OntoError::Database(rel::RelError::RestrictViolation { .. })
    ));
    assert_eq!(ep.database().row_count("team").unwrap(), 2);

    // Detach the authors first, then the delete goes through.
    ep.execute_update(
        r#"MODIFY DELETE { ?x ont:team ?t . } INSERT { }
           WHERE { ?x ont:team ex:team5 . ?x ont:team ?t . }"#,
    )
    .unwrap();
    ep.execute_update(
        r#"DELETE DATA { ex:team5 a foaf:Group ;
             foaf:name "Software Engineering" ; ont:teamCode "SEAL" . }"#,
    )
    .unwrap();
    assert_eq!(ep.database().row_count("team").unwrap(), 1);
}

#[test]
fn sql_surface_round_trips_through_rel_parser() {
    // Every statement the mediator emits is parseable SQL (the contract
    // with a real RDB driver).
    let mut ep = fixtures::endpoint_with_sample_data();
    let updates = [
        r#"INSERT DATA { ex:author30 foaf:family_name "Ritchie" ; ont:team ex:team5 . }"#,
        r#"DELETE DATA { ex:author30 ont:team ex:team5 . }"#,
        r#"MODIFY DELETE { ?x foaf:mbox ?m . }
           INSERT { ?x foaf:mbox <mailto:x@y.ch> . }
           WHERE { ?x foaf:family_name "Hert" ; foaf:mbox ?m . }"#,
    ];
    for update in updates {
        let outcome = ep.execute_update(update).expect("valid update");
        for stmt in &outcome.statements {
            rel::sql::parse(&stmt.to_string()).expect("emitted SQL parses");
        }
    }
}

#[test]
fn ontology_and_mapping_agree_on_property_ranges() {
    // Figure 2 cross-check: object properties in the mapping appear as
    // owl:ObjectProperty in the ontology; data properties as
    // owl:DatatypeProperty.
    use rdf::namespace::{owl, rdf_type};
    use rdf::Term;
    let ontology = fixtures::ontology();
    let mapping = fixtures::mapping();
    for table in &mapping.tables {
        for attr in &table.attributes {
            let Some(p) = &attr.property else { continue };
            let declared = ontology
                .object(&Term::Iri(p.property().clone()), &rdf_type())
                .expect("property declared in ontology");
            let expected = if p.is_object() {
                owl::ObjectProperty()
            } else {
                owl::DatatypeProperty()
            };
            assert_eq!(
                declared,
                Term::Iri(expected),
                "kind mismatch for {}",
                p.property()
            );
        }
    }
}

#[test]
fn queries_with_common_prefixes_work_out_of_the_box() {
    let ep = fixtures::endpoint_with_sample_data();
    // No PREFIX declarations needed: endpoint preloads common ones.
    let sols = ep
        .select("SELECT ?name WHERE { ?t ont:teamCode \"SEAL\" ; foaf:name ?name . }")
        .unwrap();
    assert_eq!(sols.len(), 1);
    let _ = PrefixMap::common();
}

#[test]
fn modify_with_filter_in_where_clause() {
    // FILTER flows through Algorithm 2's SELECT translation.
    let mut ep = fixtures::endpoint();
    for base in [30, 31, 32] {
        ep.execute_update(&fixtures::workload::insert_complete_dataset(base))
            .unwrap();
    }
    // Bump the year only for publications whose year >= 2009 (all of
    // them) AND title is "Publication 31".
    let outcome = ep
        .execute_update(
            r#"MODIFY
               DELETE { ?p ont:pubYear ?y . }
               INSERT { ?p ont:pubYear "2010" . }
               WHERE { ?p dc:title "Publication 31" ; ont:pubYear ?y . FILTER (?y >= 2009) }"#,
        )
        .unwrap();
    assert_eq!(outcome.statements_executed, 1);
    let sols = ep
        .select(r#"SELECT ?p WHERE { ?p ont:pubYear ?y . FILTER (?y = 2010) }"#)
        .unwrap();
    assert_eq!(sols.len(), 1);
}

#[test]
fn deleting_full_entity_with_its_links_in_one_operation() {
    // Remove publication 1 entirely: its attribute triples, type triple,
    // and creator link in one DELETE DATA. The sort must run the link
    // delete before the row delete.
    let mut ep = fixtures::endpoint_with_sample_data();
    let outcome = ep
        .execute_update(
            r#"DELETE DATA {
                 ex:pub1 a foaf:Document ;
                   dc:title "Relational Databases as Semantic Web Endpoints" ;
                   ont:pubYear "2009" ;
                   ont:pubType ex:pubtype4 ;
                   dc:publisher ex:publisher3 ;
                   dc:creator ex:author6 .
               }"#,
        )
        .unwrap();
    let rendered: Vec<String> = outcome.statements.iter().map(|s| s.to_string()).collect();
    let link_pos = rendered
        .iter()
        .position(|s| s.starts_with("DELETE FROM publication_author"))
        .expect("link delete present");
    let row_pos = rendered
        .iter()
        .position(|s| s.starts_with("DELETE FROM publication "))
        .expect("row delete present");
    assert!(link_pos < row_pos, "children first: {rendered:?}");
    assert_eq!(ep.database().row_count("publication").unwrap(), 0);
    assert_eq!(ep.database().row_count("publication_author").unwrap(), 0);
}

#[test]
fn describe_matches_materialized_subgraph() {
    let ep = fixtures::endpoint_with_sample_data();
    let uri = rdf::Iri::parse("http://example.org/db/team5").unwrap();
    let description = ep.describe(&uri).unwrap();
    let full = ep.materialize().unwrap();
    // Every described triple is in the full view…
    for t in description.iter() {
        assert!(full.contains(&t), "describe invented {t}");
    }
    // …and covers all triples with team5 as subject.
    let subject = rdf::Term::Iri(uri);
    assert_eq!(
        description.triples_for_subject(&subject).len(),
        full.triples_for_subject(&subject).len()
    );
}

#[test]
fn update_script_round_trip_through_endpoint() {
    let mut ep = fixtures::endpoint();
    let outcomes = ep
        .execute_script(
            r#"INSERT DATA { ex:team1 foaf:name "One" . } ;
               INSERT DATA { ex:author1 foaf:family_name "First" ; ont:team ex:team1 . } ;
               MODIFY DELETE { ?x foaf:name ?n . }
                      INSERT { ?x foaf:name "Renamed" . }
                      WHERE  { ?x foaf:name ?n . }"#,
            true,
        )
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    let sols = ep
        .select(r#"SELECT ?t WHERE { ?t foaf:name "Renamed" . }"#)
        .unwrap();
    assert_eq!(sols.len(), 1);
}

#[test]
fn idempotent_insert_data_is_accepted_as_noop() {
    // RDF set semantics: re-asserting existing triples succeeds with
    // zero SQL statements.
    let mut ep = fixtures::endpoint_with_sample_data();
    let outcome = ep
        .execute_update(r#"INSERT DATA { ex:author6 foaf:family_name "Hert" ; foaf:title "Mr" . }"#)
        .unwrap();
    assert_eq!(outcome.statements_executed, 0);
}

#[test]
fn query_variable_used_for_two_properties_forces_join() {
    // ?n bound by two different data properties → equality condition.
    let mut ep = fixtures::endpoint();
    ep.execute_update(r#"INSERT DATA { ex:team1 foaf:name "SEAL" ; ont:teamCode "SEAL" . }"#)
        .unwrap();
    ep.execute_update(r#"INSERT DATA { ex:team2 foaf:name "DBTG" ; ont:teamCode "X" . }"#)
        .unwrap();
    let sols = ep
        .select("SELECT ?t WHERE { ?t foaf:name ?n ; ont:teamCode ?n . }")
        .unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(
        sols.bindings[0]["t"],
        rdf::Term::iri("http://example.org/db/team1")
    );
}
