//! Property-based tests over the whole stack (proptest).
//!
//! The headline property is the paper's implicit correctness claim:
//! translating a SPARQL/Update through SQL and applying the same update
//! to a native triple store *commute with materialization* — provided
//! the update asserts `rdf:type` for newly created entities (row
//! creation entails the type triple in the relational view).

use proptest::prelude::*;
use rdf::{Graph, Literal, Term, Triple};
use sparql_update_rdb::fixtures;
use sparql_update_rdb::ontoaccess::Endpoint;

// ----------------------------------------------------------------------
// Strategies
// ----------------------------------------------------------------------

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9]{0,11}"
}

fn email_local_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,7}"
}

/// One randomly generated "create author" request (always includes the
/// type triple and the NOT NULL lastname).
#[derive(Debug, Clone)]
struct AuthorSpec {
    id: i64,
    lastname: String,
    firstname: Option<String>,
    title: Option<String>,
    email: Option<String>,
    team: bool, // attach to team 5 (exists in sample data)
}

fn author_spec() -> impl Strategy<Value = AuthorSpec> {
    (
        100i64..100_000,
        name_strategy(),
        proptest::option::of(name_strategy()),
        proptest::option::of(name_strategy()),
        proptest::option::of(email_local_strategy()),
        any::<bool>(),
    )
        .prop_map(|(id, lastname, firstname, title, email, team)| AuthorSpec {
            id,
            lastname,
            firstname,
            title,
            email,
            team,
        })
}

fn insert_request(spec: &AuthorSpec) -> String {
    let mut lines = vec![
        format!("ex:author{} a foaf:Person", spec.id),
        format!("    foaf:family_name \"{}\"", spec.lastname),
    ];
    if let Some(f) = &spec.firstname {
        lines.push(format!("    foaf:firstName \"{f}\""));
    }
    if let Some(t) = &spec.title {
        lines.push(format!("    foaf:title \"{t}\""));
    }
    if let Some(e) = &spec.email {
        lines.push(format!("    foaf:mbox <mailto:{e}@example.org>"));
    }
    if spec.team {
        lines.push("    ont:team ex:team5".to_owned());
    }
    format!("INSERT DATA {{\n{} .\n}}", lines.join(" ;\n"))
}

fn apply_native(endpoint: &Endpoint, graph: &mut Graph, request: &str) {
    let op = sparql::parse_update_with_prefixes(request, endpoint.prefixes().clone())
        .expect("request parses");
    sparql::apply(graph, &op).expect("native application succeeds");
}

// ----------------------------------------------------------------------
// Properties
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert-through-SQL and native insert agree on the resulting RDF
    /// view, for arbitrary generated author data.
    #[test]
    fn insert_commutes_with_materialization(spec in author_spec()) {
        let mut ep = fixtures::endpoint_with_sample_data();
        let mut native = ep.materialize().unwrap();
        let request = insert_request(&spec);
        ep.execute_update(&request).expect("generated insert is valid");
        apply_native(&ep, &mut native, &request);
        prop_assert_eq!(ep.materialize().unwrap(), native);
    }

    /// Inserting then deleting the optional attributes returns the RDF
    /// view to the bare state — and never touches other entities.
    #[test]
    fn delete_undoes_optional_inserts(spec in author_spec()) {
        let mut ep = fixtures::endpoint_with_sample_data();
        // Bare author first.
        let bare = AuthorSpec { firstname: None, title: None, email: None, team: false, ..spec.clone() };
        ep.execute_update(&insert_request(&bare)).unwrap();
        let bare_view = ep.materialize().unwrap();
        // Add optional attributes, then delete exactly them.
        let mut adds = Vec::new();
        if let Some(f) = &spec.firstname {
            adds.push(format!("foaf:firstName \"{f}\""));
        }
        if let Some(t) = &spec.title {
            adds.push(format!("foaf:title \"{t}\""));
        }
        if let Some(e) = &spec.email {
            adds.push(format!("foaf:mbox <mailto:{e}@example.org>"));
        }
        if adds.is_empty() {
            prop_assert_eq!(ep.materialize().unwrap(), bare_view);
            return Ok(());
        }
        let body = adds.join(" ; ");
        ep.execute_update(&format!("INSERT DATA {{ ex:author{} {body} . }}", spec.id)).unwrap();
        ep.execute_update(&format!("DELETE DATA {{ ex:author{} {body} . }}", spec.id)).unwrap();
        prop_assert_eq!(ep.materialize().unwrap(), bare_view);
    }

    /// Rejected updates leave the database bit-for-bit unchanged
    /// (atomicity at the operation level), for arbitrary — often
    /// invalid — requests.
    #[test]
    fn rejection_is_atomic(
        spec in author_spec(),
        break_lastname in any::<bool>(),
        dangling_team in any::<bool>(),
    ) {
        let mut ep = fixtures::endpoint_with_sample_data();
        let before = ep.materialize().unwrap();
        let mut lines = vec![format!("ex:author{} a foaf:Person", spec.id)];
        if !break_lastname {
            lines.push(format!("    foaf:family_name \"{}\"", spec.lastname));
        }
        if dangling_team {
            lines.push("    ont:team ex:team424242".to_owned());
        }
        let request = format!("INSERT DATA {{\n{} .\n}}", lines.join(" ;\n"));
        match ep.execute_update(&request) {
            Ok(_) => {
                prop_assert!(!break_lastname && !dangling_team);
            }
            Err(_) => {
                prop_assert_eq!(ep.materialize().unwrap(), before);
            }
        }
    }

    /// MODIFY replacing the email equals native MODIFY semantics.
    #[test]
    fn modify_commutes_with_materialization(local in email_local_strategy()) {
        let mut ep = fixtures::endpoint_with_sample_data();
        let mut native = ep.materialize().unwrap();
        let request = format!(
            "MODIFY DELETE {{ ?x foaf:mbox ?m . }} \
             INSERT {{ ?x foaf:mbox <mailto:{local}@example.org> . }} \
             WHERE {{ ?x foaf:family_name \"Hert\" ; foaf:mbox ?m . }}"
        );
        ep.execute_update(&request).expect("modify is valid");
        apply_native(&ep, &mut native, &request);
        prop_assert_eq!(ep.materialize().unwrap(), native);
    }

    /// SPARQL-over-SQL equals SPARQL-over-materialized-graph on random
    /// database states.
    #[test]
    fn query_translation_agrees_with_native(seed in 0u64..1000, n in 5usize..40) {
        let db = fixtures::data::populated_database(n, seed);
        let graph = ontoaccess::materialize(&db, &fixtures::mapping()).unwrap();
        let ep = Endpoint::new(db, fixtures::mapping()).unwrap();
        for q in [
            fixtures::workload::select_authors_with_team(),
            fixtures::workload::select_publications_with_authors(),
            fixtures::workload::select_recent_publications(2000),
        ] {
            let mut relational = ep.select(&q).unwrap();
            let query = sparql::parse_query_with_prefixes(&q, ep.prefixes().clone()).unwrap();
            let sparql::Query::Select(select) = query else { panic!() };
            let mut native = sparql::evaluate_select(&graph, &select);
            relational.bindings.sort();
            native.bindings.sort();
            prop_assert_eq!(relational.bindings, native.bindings);
        }
    }

    /// URI patterns: generate then match is the identity on key values.
    #[test]
    fn uri_pattern_roundtrip(id in 0i64..1_000_000) {
        let mapping = fixtures::mapping();
        for table in &mapping.tables {
            let uri = mapping
                .instance_uri(table, &|_| Some(id.to_string().into()))
                .unwrap();
            let (found, values) = mapping.identify(&uri).unwrap();
            prop_assert_eq!(&found.table_name, &table.table_name);
            prop_assert_eq!(values, vec![("id".to_owned(), id.to_string())]);
        }
    }

    /// Turtle round-trips arbitrary graphs built from safe generators.
    #[test]
    fn turtle_roundtrip(triples in proptest::collection::vec(triple_strategy(), 0..30)) {
        let graph: Graph = triples.into_iter().collect();
        let text = rdf::turtle::write(&graph, &rdf::PrefixMap::common());
        let parsed = rdf::turtle::parse(&text).unwrap();
        prop_assert_eq!(parsed, graph);
    }

    /// N-Triples round-trips the same graphs.
    #[test]
    fn ntriples_roundtrip(triples in proptest::collection::vec(triple_strategy(), 0..30)) {
        let graph: Graph = triples.into_iter().collect();
        let text = rdf::ntriples::write(&graph);
        let parsed = rdf::ntriples::parse(&text).unwrap();
        prop_assert_eq!(parsed, graph);
    }

    /// The SQL printer/parser round-trip on generated statements.
    #[test]
    fn sql_roundtrip(stmt in sql_statement_strategy()) {
        let text = stmt.to_string();
        let reparsed = rel::sql::parse(&text).unwrap();
        prop_assert_eq!(reparsed, stmt);
    }

    /// Dictionary ids are stable: the symbol interned for a string
    /// before any storage work resolves to the same string and
    /// re-interns to the same id after (a) a savepoint-rolled-back
    /// update that carried the string and (b) a full snapshot+WAL
    /// recovery of a durable mediator that committed it.
    #[test]
    fn dictionary_ids_survive_rollback_and_recovery(
        names in proptest::collection::vec(name_strategy(), 1..4),
    ) {
        use sparql_update_rdb::fixtures::diff;
        use sparql_update_rdb::ontoaccess::Mediator;
        use sparql_update_rdb::rel::{Sym, Value};

        // Pin every string's id up front.
        let pinned: Vec<(Sym, &str)> =
            names.iter().map(|s| (Sym::intern(s), s.as_str())).collect();

        let dir = fixtures::scratch_dir("dict-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let mut db = fixtures::database();
        fixtures::seed_paper_rows(&mut db);
        let mediator = Mediator::open_durable(&dir, db, fixtures::mapping())
            .unwrap()
            .0;

        // (a) Rolled-back work: a two-operation atomic script whose
        // second operation dangles, so the first (which interns the
        // string into a stored row) is fully undone and logs nothing.
        let commits_before = mediator.durability_stats().unwrap().commits_appended;
        for (k, name) in names.iter().enumerate() {
            let script = fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:team{id} foaf:name \"{name}\" . }} ;\n\
                 INSERT DATA {{ ex:author{id} ont:team ex:team555555 . }}",
                id = 910_000 + k,
            ));
            prop_assert!(mediator.execute_script(&script, true).is_err());
        }
        prop_assert_eq!(
            mediator.durability_stats().unwrap().commits_appended,
            commits_before,
            "rolled-back scripts must log nothing"
        );
        for (sym, s) in &pinned {
            prop_assert_eq!(sym.as_str(), *s);
            prop_assert_eq!(Sym::intern(s), *sym);
        }

        // (b) Committed work, then recovery from disk.
        for (k, name) in names.iter().enumerate() {
            let insert = fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:team{id} foaf:name \"{name}\" . }}",
                id = 920_000 + k,
            ));
            mediator.execute_update(&insert).unwrap();
        }
        let before = mediator.database().clone();
        drop(mediator);
        let recovered = Mediator::open_durable(&dir, fixtures::database(), fixtures::mapping())
            .unwrap()
            .0;
        let after = recovered.database();
        diff::assert_heaps_identical(&before, &after, "dictionary recovery");
        // Every recovered text cell resolves to a string that interns
        // right back to the same id (resolve∘intern is the identity).
        for table in after.schema().tables() {
            for (_, row) in after.scan(&table.name).unwrap() {
                for value in row {
                    if let Value::Text(sym) = value {
                        prop_assert_eq!(Sym::intern(sym.as_str()), *sym);
                    }
                }
            }
        }
        drop(after);
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ----------------------------------------------------------------------
// Generator helpers for the round-trip properties
// ----------------------------------------------------------------------

fn iri_strategy() -> impl Strategy<Value = Term> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| Term::iri(&format!("http://example.org/gen/{s}")))
}

fn literal_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Plain strings including escapes.
        "[ -~]{0,16}".prop_map(|s| Term::Literal(Literal::plain(s))),
        any::<i64>().prop_map(|i| Term::Literal(Literal::integer(i))),
        any::<bool>().prop_map(|b| Term::Literal(Literal::boolean(b))),
        ("[a-z]{1,6}", "[a-z]{2}").prop_map(|(s, tag)| Term::Literal(Literal::lang(s, tag))),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Triple> {
    (
        iri_strategy(),
        "[a-z][a-z0-9]{0,8}",
        prop_oneof![iri_strategy(), literal_strategy()],
    )
        .prop_map(|(s, p, o)| {
            Triple::new(
                s,
                rdf::Iri::parse(format!("http://example.org/prop/{p}")).unwrap(),
                o,
            )
        })
}

fn sql_value_strategy() -> impl Strategy<Value = rel::Value> {
    prop_oneof![
        Just(rel::Value::Null),
        any::<i64>().prop_map(rel::Value::Int),
        "[ -~]{0,12}".prop_map(rel::Value::text),
        any::<bool>().prop_map(rel::Value::Bool),
    ]
}

fn identifier_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,9}".prop_filter("not a keyword", |s| {
        !matches!(
            s.to_ascii_uppercase().as_str(),
            "INSERT"
                | "INTO"
                | "VALUES"
                | "UPDATE"
                | "SET"
                | "DELETE"
                | "FROM"
                | "SELECT"
                | "DISTINCT"
                | "WHERE"
                | "AND"
                | "OR"
                | "NOT"
                | "IS"
                | "NULL"
                | "TRUE"
                | "FALSE"
                | "AS"
        )
    })
}

fn sql_statement_strategy() -> impl Strategy<Value = rel::sql::Statement> {
    use rel::sql::{BulkRow, BulkUpdateStmt, DeleteStmt, Expr, InsertStmt, Statement, UpdateStmt};
    let insert = (
        identifier_strategy(),
        proptest::collection::vec((identifier_strategy(), sql_value_strategy()), 1..6),
        proptest::collection::vec(sql_value_strategy(), 0..8),
    )
        .prop_map(|(table, pairs, extra)| {
            // Deduplicate column names to keep the statement well formed.
            let mut seen = std::collections::BTreeSet::new();
            let pairs: Vec<_> = pairs
                .into_iter()
                .filter(|(c, _)| seen.insert(c.clone()))
                .collect();
            // First row from the pairs; further rows (multi-row VALUES)
            // recycle the extra values to the same width.
            let columns: Vec<String> = pairs.iter().map(|(c, _)| c.clone()).collect();
            let first: Vec<rel::Value> = pairs.into_iter().map(|(_, v)| v).collect();
            let width = columns.len();
            let mut rows = vec![first];
            for chunk in extra.chunks(width) {
                if chunk.len() == width {
                    rows.push(chunk.to_vec());
                }
            }
            Statement::Insert(InsertStmt {
                table,
                columns,
                rows,
            })
        });
    let update = (
        identifier_strategy(),
        identifier_strategy(),
        sql_value_strategy(),
        identifier_strategy(),
        sql_value_strategy(),
    )
        .prop_map(|(table, set_col, set_val, where_col, where_val)| {
            Statement::Update(UpdateStmt {
                table,
                assignments: vec![(set_col, Expr::Value(set_val))],
                where_clause: Some(Expr::eq(Expr::col(&where_col), Expr::Value(where_val))),
            })
        });
    let bulk_update = (
        identifier_strategy(),
        identifier_strategy(),
        identifier_strategy(),
        proptest::collection::vec((sql_value_strategy(), sql_value_strategy()), 1..5),
    )
        .prop_map(|(table, key_col, set_col, tuples)| {
            Statement::BulkUpdate(BulkUpdateStmt {
                table,
                key_columns: vec![key_col],
                set_columns: vec![set_col],
                rows: tuples
                    .into_iter()
                    .map(|(k, s)| BulkRow {
                        key: vec![k],
                        set: vec![s],
                    })
                    .collect(),
            })
        });
    let delete = (
        identifier_strategy(),
        identifier_strategy(),
        sql_value_strategy(),
    )
        .prop_map(|(table, col, val)| {
            Statement::Delete(DeleteStmt {
                table,
                where_clause: Some(Expr::eq(Expr::col(&col), Expr::Value(val))),
            })
        });
    let delete_in = (
        identifier_strategy(),
        identifier_strategy(),
        proptest::collection::vec(sql_value_strategy(), 1..6),
        any::<bool>(),
    )
        .prop_map(|(table, col, vals, negated)| {
            Statement::Delete(DeleteStmt {
                table,
                where_clause: Some(rel::sql::Expr::InList {
                    expr: Box::new(Expr::col(&col)),
                    list: vals.into_iter().map(Expr::Value).collect(),
                    negated,
                }),
            })
        });
    prop_oneof![insert, update, bulk_update, delete, delete_in]
}
