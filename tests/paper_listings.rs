//! End-to-end reproduction of every worked example in the paper
//! (Listings 9-18): each SPARQL/Update request is sent through the full
//! mediator stack and the generated SQL is compared against the paper's
//! listings.

use sparql_update_rdb::fixtures;
use sparql_update_rdb::ontoaccess::Endpoint;

fn sql(outcome: &sparql_update_rdb::ontoaccess::UpdateOutcome) -> Vec<String> {
    outcome.statements.iter().map(|s| s.to_string()).collect()
}

/// Endpoint with team 5 present (what Listings 9/15 assume) but no
/// author 6 yet.
fn teams_only_endpoint() -> Endpoint {
    let mut ep = fixtures::endpoint();
    ep.execute_update(
        r#"INSERT DATA { ex:team5 foaf:name "Software Engineering" ; ont:teamCode "SEAL" . }"#,
    )
    .expect("seeding team 5");
    ep
}

#[test]
fn listing_9_to_listing_10() {
    let mut ep = teams_only_endpoint();
    let outcome = ep
        .execute_update(
            r#"INSERT DATA {
                 ex:author6 foaf:title "Mr" ;
                   foaf:firstName "Matthias" ;
                   foaf:family_name "Hert" ;
                   foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                   ont:team ex:team5 .
               }"#,
        )
        .expect("Listing 9 is valid");
    assert_eq!(
        sql(&outcome),
        vec![
            "INSERT INTO author (id, title, firstname, lastname, email, team) \
             VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);"
        ]
    );
}

#[test]
fn listing_13_to_listing_14() {
    let mut ep = fixtures::endpoint();
    let outcome = ep
        .execute_update(
            r#"INSERT DATA {
                 ex:team4 foaf:name "Database Technology" ;
                   ont:teamCode "DBTG" .
               }"#,
        )
        .expect("Listing 13 is valid");
    assert_eq!(
        sql(&outcome),
        vec!["INSERT INTO team (id, name, code) VALUES (4, 'Database Technology', 'DBTG');"]
    );
}

#[test]
fn listing_15_to_listing_16() {
    // The complete dataset: six INSERTs whose execution order must
    // respect every FK edge. The paper's Listing 16 shows one valid
    // topological order; we assert the same statements and the same
    // precedence constraints.
    let mut ep = fixtures::endpoint();
    let outcome = ep
        .execute_update(
            r#"INSERT DATA {
                 ex:pub12 dc:title "Relational Databases as Semantic Web Endpoints" ;
                   ont:pubYear "2009" ;
                   ont:pubType ex:pubtype4 ;
                   dc:publisher ex:publisher3 ;
                   dc:creator ex:author6 .

                 ex:author6 foaf:title "Mr" ;
                   foaf:firstName "Matthias" ;
                   foaf:family_name "Hert" ;
                   foaf:mbox <mailto:hert@ifi.uzh.ch> ;
                   ont:team ex:team5 .

                 ex:team5 foaf:name "Software Engineering" ;
                   ont:teamCode "SEAL" .

                 ex:pubtype4 ont:type "inproceedings" .

                 ex:publisher3 ont:name "Springer" .
               }"#,
        )
        .expect("Listing 15 is valid");
    let statements = sql(&outcome);
    assert_eq!(statements.len(), 6);

    // Same statements as Listing 16 (as a set).
    let expected = [
        "INSERT INTO team (id, name, code) VALUES (5, 'Software Engineering', 'SEAL');",
        "INSERT INTO pubtype (id, type) VALUES (4, 'inproceedings');",
        "INSERT INTO publisher (id, name) VALUES (3, 'Springer');",
        "INSERT INTO publication (id, title, year, type, publisher) \
         VALUES (12, 'Relational Databases as Semantic Web Endpoints', 2009, 4, 3);",
        "INSERT INTO author (id, title, firstname, lastname, email, team) \
         VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);",
        "INSERT INTO publication_author (publication, author) VALUES (12, 6);",
    ];
    for e in expected {
        assert!(statements.contains(&e.to_owned()), "missing: {e}");
    }

    // Precedence constraints of the FK sort.
    let pos = |needle: &str| {
        statements
            .iter()
            .position(|s| s.starts_with(needle))
            .unwrap_or_else(|| panic!("no statement starting with {needle}"))
    };
    assert!(pos("INSERT INTO team") < pos("INSERT INTO author"));
    assert!(pos("INSERT INTO pubtype") < pos("INSERT INTO publication"));
    assert!(pos("INSERT INTO publisher") < pos("INSERT INTO publication"));
    assert!(pos("INSERT INTO publication ") < pos("INSERT INTO publication_author"));
    assert!(pos("INSERT INTO author") < pos("INSERT INTO publication_author"));

    // And the data actually landed.
    assert_eq!(ep.database().row_count("publication").unwrap(), 1);
    assert_eq!(ep.database().row_count("publication_author").unwrap(), 1);
}

#[test]
fn listing_17_to_listing_18() {
    let mut ep = fixtures::endpoint_with_sample_data();
    let outcome = ep
        .execute_update(r#"DELETE DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }"#)
        .expect("Listing 17 is valid");
    assert_eq!(
        sql(&outcome),
        vec!["UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';"]
    );
}

#[test]
fn listing_11_to_listing_12() {
    // MODIFY replacing the email address; Algorithm 2 produces the
    // Listing 12 intermediate operations (here surfaced in the report:
    // the delete side is recognized as redundant by the §5.2
    // optimization) and executes the corresponding SQL.
    let mut ep = fixtures::endpoint_with_sample_data();
    let outcome = ep
        .execute_update(
            r#"MODIFY
               DELETE { ?x foaf:mbox ?mbox . }
               INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
               WHERE {
                 ?x rdf:type foaf:Person ;
                    foaf:firstName "Matthias" ;
                    foaf:family_name "Hert" ;
                    foaf:mbox ?mbox .
               }"#,
        )
        .expect("Listing 11 is valid");
    let report = outcome.modify.as_ref().expect("MODIFY report");
    assert_eq!(report.bindings, 1);

    // Listing 12's DELETE DATA triple (optimized away) …
    assert_eq!(report.optimized_away.len(), 1);
    let deleted = &report.optimized_away[0];
    assert_eq!(
        deleted.to_string(),
        "<http://example.org/db/author6> <http://xmlns.com/foaf/0.1/mbox> \
         <mailto:hert@ifi.uzh.ch> ."
    );
    // … and its INSERT DATA counterpart.
    assert_eq!(report.insert_data.len(), 1);
    assert_eq!(
        report.insert_data[0].to_string(),
        "<http://example.org/db/author6> <http://xmlns.com/foaf/0.1/mbox> \
         <mailto:hert@example.com> ."
    );
    assert_eq!(
        sql(&outcome),
        vec!["UPDATE author SET email = 'hert@example.com' WHERE id = 6;"]
    );
}

#[test]
fn second_insert_becomes_update_as_in_section_5_1() {
    let mut ep = fixtures::endpoint();
    let first = ep
        .execute_update(r#"INSERT DATA { ex:author9 foaf:family_name "Gall" . }"#)
        .unwrap();
    assert!(sql(&first)[0].starts_with("INSERT INTO author"));
    let second = ep
        .execute_update(
            r#"INSERT DATA { ex:author9 foaf:firstName "Harald" ;
                 foaf:mbox <mailto:gall@ifi.uzh.ch> . }"#,
        )
        .unwrap();
    assert_eq!(
        sql(&second),
        vec!["UPDATE author SET firstname = 'Harald', email = 'gall@ifi.uzh.ch' WHERE id = 9;"]
    );
}

#[test]
fn delete_of_all_remaining_data_becomes_row_delete_as_in_section_5_1() {
    let mut ep = fixtures::endpoint();
    ep.execute_update(r#"INSERT DATA { ex:team4 foaf:name "DB" ; ont:teamCode "DBTG" . }"#)
        .unwrap();
    let outcome = ep
        .execute_update(
            r#"DELETE DATA { ex:team4 a foaf:Group ; foaf:name "DB" ; ont:teamCode "DBTG" . }"#,
        )
        .unwrap();
    assert_eq!(sql(&outcome), vec!["DELETE FROM team WHERE id = 4;"]);
    assert_eq!(ep.database().row_count("team").unwrap(), 0);
}

#[test]
fn table_1_mapping_overview_regenerates() {
    // Table 1: every table → class and attribute → property pair.
    let mapping = fixtures::mapping();
    let rows: Vec<(String, String)> = mapping
        .tables
        .iter()
        .map(|t| (t.table_name.clone(), t.class.local_name().to_owned()))
        .collect();
    assert!(rows.contains(&("publication".into(), "Document".into())));
    assert!(rows.contains(&("publisher".into(), "Publisher".into())));
    assert!(rows.contains(&("pubtype".into(), "PubType".into())));
    assert!(rows.contains(&("author".into(), "Person".into())));
    assert!(rows.contains(&("team".into(), "Group".into())));
    assert_eq!(mapping.link_tables[0].property.local_name(), "creator");
}
