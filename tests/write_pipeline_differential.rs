//! Differential tests for the set-based write pipeline: on randomized
//! database states and update workloads, the batched path (grouped
//! statements through the table-level sort and the bulk engine entry
//! points) must leave the database byte-identical to the per-row
//! reference path (one statement per row through the seed's
//! statement-pair sort) — including when an operation fails mid-batch
//! and rolls back, and including the secondary indexes, which the
//! planner-vs-reference query harness exercises on the final states.

use proptest::prelude::*;
use sparql_update_rdb::fixtures;
use sparql_update_rdb::fixtures::diff::{
    assert_heaps_identical, assert_indexes_consistent, assert_planner_matches_reference,
};
use sparql_update_rdb::ontoaccess;
use sparql_update_rdb::rdf::namespace::PrefixMap;
use sparql_update_rdb::rel::{self, Database, Value};
use sparql_update_rdb::sparql;

// ----------------------------------------------------------------------
// Workload generation
// ----------------------------------------------------------------------

fn parse_op(text: &str) -> sparql::UpdateOp {
    sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap()
}

// A deterministic mixed update workload over the populated database's
// id space: inserts (fresh and complete datasets), pure-insert and
// overwrite MODIFYs, null-update MODIFYs, whole-row-delete MODIFYs
// (which hit RESTRICT mid-batch when teams are referenced), and DELETE
// DATA requests that may reject (absent triples). Rejections are part
// of the differential contract: both paths must fail identically and
// leave their databases untouched.
fn workload_ops(team: i64, k: usize) -> Vec<String> {
    let team_uri = format!("ex:team{team}");
    let base = 800_000 + 10 * k as i64;
    vec![
        fixtures::workload::insert_author(500_000 + k as i64, k % 5, Some(team)),
        fixtures::workload::insert_complete_dataset(600_000 + k as i64),
        // Mixed column shapes within one table: the middle subject
        // breaks the insert run, which must not reorder physical rows.
        fixtures::workload::with_prefixes(&format!(
            "INSERT DATA {{
               ex:team{a} foaf:name \"Ta{k}\" ; ont:teamCode \"Ka{k}\" .
               ex:team{b} foaf:name \"Tb{k}\" .
               ex:team{c} foaf:name \"Tc{k}\" ; ont:teamCode \"Kc{k}\" .
             }}",
            a = base,
            b = base + 1,
            c = base + 2,
        )),
        fixtures::workload::with_prefixes(&format!(
            "INSERT {{ ?x foaf:title \"Dr\" . }} WHERE {{ ?x ont:team {team_uri} . }}"
        )),
        fixtures::workload::with_prefixes(&format!(
            "MODIFY DELETE {{ ?x foaf:mbox ?m . }} \
             INSERT {{ ?x foaf:mbox <mailto:all@new.org> . }} \
             WHERE {{ ?x ont:team {team_uri} ; foaf:mbox ?m . }}"
        )),
        fixtures::workload::with_prefixes(
            "MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { } \
             WHERE { ?x foaf:mbox ?m . }",
        ),
        fixtures::workload::delete_author_email(1000 + k as i64),
        fixtures::workload::with_prefixes(
            "MODIFY DELETE { ?t a foaf:Group ; foaf:name ?n ; ont:teamCode ?c . } \
             INSERT { } WHERE { ?t foaf:name ?n ; ont:teamCode ?c . }",
        ),
    ]
}

// Run one op through both pipelines and check the differential
// contract. Returns whether the op succeeded.
fn run_differential(
    batched: &mut Database,
    reference: &mut Database,
    mapping: &sparql_update_rdb::r3m::Mapping,
    text: &str,
) -> bool {
    let op = parse_op(text);
    let result_batched = ontoaccess::execute_update_op(batched, mapping, &op);
    let result_reference = ontoaccess::execute_update_op_reference(reference, mapping, &op);
    match (&result_batched, &result_reference) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.rows_affected, b.rows_affected,
                "row accounting differs: {text}"
            );
            assert!(
                a.statements.len() <= b.statements.len(),
                "batching produced more statements than per-row: {text}"
            );
            true
        }
        (Err(ea), Err(eb)) => {
            assert_eq!(
                std::mem::discriminant(ea),
                std::mem::discriminant(eb),
                "error kinds differ: {text}: batched={ea}, reference={eb}"
            );
            // Engine failures all surface as OntoError::Database — the
            // inner kinds must agree too, or a divergence in failure
            // cause would slip through the outer discriminant.
            if let (ontoaccess::OntoError::Database(ra), ontoaccess::OntoError::Database(rb)) =
                (ea, eb)
            {
                assert_eq!(
                    std::mem::discriminant(ra),
                    std::mem::discriminant(rb),
                    "engine error kinds differ: {text}: batched={ra}, reference={rb}"
                );
            }
            // A rejected MODIFY may have committed its delete round at
            // this layer (the endpoint's scratch copy makes whole
            // operations atomic) — but batched and reference must agree
            // exactly on what was kept, which the caller's heap/index
            // comparison verifies.
            false
        }
        (Ok(_), Err(e)) => panic!("batched succeeded, reference failed ({e}): {text}"),
        (Err(e), Ok(_)) => panic!("batched failed ({e}), reference succeeded: {text}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched ≡ per-row over randomized database states and a mixed
    /// update workload, including rejected operations, with heap,
    /// index, and planner-level equality after every step.
    #[test]
    fn batched_write_path_matches_per_row_reference(
        n in 2usize..25,
        seed in 0u64..500,
        team_index in 0usize..4,
    ) {
        let mut batched = fixtures::data::populated_database(n, seed);
        let mut reference = batched.clone();
        let mapping = fixtures::mapping();
        let team = fixtures::data::ID_BASE + (team_index % (n / 10).max(2)) as i64;
        for (k, text) in workload_ops(team, n).iter().enumerate() {
            run_differential(&mut batched, &mut reference, &mapping, text);
            assert_heaps_identical(&batched, &reference, &format!("op {k}: {text}"));
            assert_indexes_consistent(&batched, &format!("op {k} (batched)"));
            assert_indexes_consistent(&reference, &format!("op {k} (reference)"));
        }
        assert_planner_matches_reference(&mut batched, "workload");
    }
}

/// Mixed column shapes within one table must not reorder its physical
/// rows: insert grouping folds per-table *runs*, so row ids and
/// auto-increment values stay byte-identical to the per-row reference
/// even when a middle subject carries extra attributes.
#[test]
fn mixed_insert_shapes_keep_the_heap_byte_identical() {
    let mut batched = fixtures::data::populated_database(5, 3);
    let mut reference = batched.clone();
    let mapping = fixtures::mapping();
    // Shapes: [id, name, code] / [id, name] / [id, name, code] — the
    // middle subject breaks the run.
    let op = parse_op(&fixtures::workload::with_prefixes(
        "INSERT DATA {
           ex:team900 foaf:name \"A\" ; ont:teamCode \"CA\" .
           ex:team901 foaf:name \"B\" .
           ex:team902 foaf:name \"C\" ; ont:teamCode \"CC\" .
         }",
    ));
    let a = ontoaccess::execute_update_op(&mut batched, &mapping, &op).unwrap();
    let b = ontoaccess::execute_update_op_reference(&mut reference, &mapping, &op).unwrap();
    assert_eq!(a.rows_affected, b.rows_affected);
    assert_heaps_identical(&batched, &reference, "mixed insert shapes");
    assert_indexes_consistent(&batched, "mixed insert shapes");
}

// ----------------------------------------------------------------------
// Bulk-write atomicity: a failing k-th row of a grouped statement
// ----------------------------------------------------------------------

/// A MODIFY whose grouped DELETE's second row violates RESTRICT (team 5
/// is still referenced by its authors) must leave the database
/// byte-identical to the pre-MODIFY state — heap, indexes, and planner
/// behaviour included — even though the group's first row (team 4,
/// unreferenced) deleted successfully before the violation.
#[test]
fn failing_row_mid_group_leaves_database_byte_identical() {
    let mut ep = fixtures::endpoint_with_sample_data();
    let before = ep.database().clone();
    let err = ep
        .execute_update(
            "MODIFY DELETE { ?t a foaf:Group ; foaf:name ?n ; ont:teamCode ?c . } \
             INSERT { } WHERE { ?t foaf:name ?n ; ont:teamCode ?c . }",
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            ontoaccess::OntoError::Database(rel::RelError::RestrictViolation { .. })
        ),
        "expected a RESTRICT violation, got: {err}"
    );
    let mut after = ep.database().clone();
    assert_heaps_identical(&before, &after, "post-rollback");
    assert_indexes_consistent(&after, "post-rollback");
    assert_planner_matches_reference(&mut after, "rollback");
}

/// Same contract at the raw statement level: a multi-row INSERT whose
/// third row violates the primary key must roll back rows one and two,
/// indexes included.
#[test]
fn failing_row_mid_multi_row_insert_rolls_back_cleanly() {
    let mut db = fixtures::database();
    fixtures::seed_paper_rows(&mut db);
    let before = db.clone();
    let stmt =
        rel::sql::parse("INSERT INTO team (id, name) VALUES (10, 'A'), (11, 'B'), (4, 'dup');")
            .unwrap();
    let err = ontoaccess::execute_sorted(&mut db, vec![stmt]).unwrap_err();
    assert!(matches!(
        err,
        ontoaccess::OntoError::Database(rel::RelError::PrimaryKeyViolation { .. })
    ));
    assert_heaps_identical(&before, &db, "post-rollback");
    assert_indexes_consistent(&db, "post-rollback");
}

/// The grouped UPDATE rolls back the same way when a CHECK constraint
/// rejects a row mid-group.
#[test]
fn failing_row_mid_bulk_update_rolls_back_cleanly() {
    use sparql_update_rdb::rel::{Column, Schema, SqlType, Table};
    let mut schema = Schema::new();
    schema
        .add_table(
            Table::builder("publication")
                .column(Column::new("id", SqlType::Integer).not_null())
                .column(Column::new("title", SqlType::Varchar).not_null())
                .column(Column::new("year", SqlType::Integer))
                .primary_key(&["id"])
                .check("year_range", "year >= 1900 AND year <= 2100")
                .build(),
        )
        .unwrap();
    let mut db = Database::new(schema).unwrap();
    for (id, year) in [(1, 2000i64), (2, 2005)] {
        db.insert(
            "publication",
            &[
                ("id".to_owned(), Value::Int(id)),
                ("title".to_owned(), Value::text(format!("P{id}"))),
                ("year".to_owned(), Value::Int(year)),
            ],
        )
        .unwrap();
    }
    let before = db.clone();
    let stmt =
        rel::sql::parse("UPDATE publication BY (id) SET (year) VALUES (1, 2050), (2, 2150);")
            .unwrap();
    let err = ontoaccess::execute_sorted(&mut db, vec![stmt]).unwrap_err();
    assert!(matches!(
        err,
        ontoaccess::OntoError::Database(rel::RelError::CheckViolation { .. })
    ));
    assert_heaps_identical(&before, &db, "post-rollback");
    assert_indexes_consistent(&db, "post-rollback");
}
