//! MVCC snapshot-isolation differential suite.
//!
//! The contract under test: every read observes exactly the database
//! state of *some* committed version — serialized execution of the
//! same write sequence against a reference `Database` must reproduce,
//! byte for byte, the heap each reader pins — and version sequence
//! numbers never run backwards within a session. Plus the lifecycle
//! edges: rollbacks publish nothing, a durable reopen resumes the
//! version numbering from the WAL, time-travel reads stay pinned
//! through later commits, and dropping the last `ReadSession` releases
//! its retired version promptly (the drop-glue / memory audit).

use sparql_update_rdb::fixtures;
use sparql_update_rdb::fixtures::diff::assert_heaps_identical;
use sparql_update_rdb::ontoaccess::{self, Mediator};
use sparql_update_rdb::rdf::namespace::PrefixMap;
use sparql_update_rdb::sparql::{self, Query, Solutions};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

fn parse_op(text: &str) -> sparql::UpdateOp {
    sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap()
}

// Row-order-insensitive comparison: the live path runs a cached plan
// compiled against an earlier snapshot (possibly with different index
// availability), so join order — and therefore row order — may differ
// from a fresh reference compilation while the solution *set* must not.
fn sorted_rows(solutions: &Solutions) -> Vec<String> {
    let mut rows: Vec<String> = solutions
        .bindings
        .iter()
        .map(|binding| format!("{binding:?}"))
        .collect();
    rows.sort();
    rows
}

/// The core differential: a randomized write storm (including no-op
/// updates, rejected updates, and explicit mid-storm rollbacks) against
/// concurrent snapshot readers. A serialized reference execution
/// records the committed state at every published sequence number;
/// each reader guard must match the reference at its pinned sequence
/// exactly — both the raw heap and query results — and sequences must
/// be monotone per session.
#[test]
fn snapshot_reads_match_serialized_reference_under_storm() {
    const WRITES: usize = 120;
    const READERS: usize = 2;
    let n = 30;
    let initial = fixtures::data::populated_database(n, 7);
    let mediator = Mediator::new(initial.clone(), fixtures::mapping()).unwrap();
    let mapping = fixtures::mapping();

    let base_seq = mediator.concurrency_stats().current_version;
    // seq → the committed state published under that sequence number.
    // The writer inserts the expected next entry *before* committing,
    // so a reader can never pin a version whose reference is missing.
    let references = Mutex::new(BTreeMap::from([(base_seq, initial.clone())]));
    let done = AtomicBool::new(false);

    let query = fixtures::workload::with_prefixes("SELECT ?x ?m WHERE { ?x foaf:mbox ?m . }");
    let parsed_query = match sparql::parse_query_with_prefixes(&query, PrefixMap::common()) {
        Ok(Query::Select(select)) => select,
        other => panic!("fixture query must be a SELECT: {other:?}"),
    };

    std::thread::scope(|scope| {
        let mediator = &mediator;
        let references = &references;
        let done = &done;
        let query = &query;
        let parsed_query = &parsed_query;
        let mapping = &mapping;

        let mut handles = Vec::new();
        for reader_id in 0..READERS {
            let session = mediator.read();
            handles.push(scope.spawn(move || {
                let mut last_seq = 0u64;
                let mut iterations = 0usize;
                while !done.load(Ordering::Relaxed) || iterations == 0 {
                    let guard = session.database();
                    let seq = guard.version_seq();
                    assert!(
                        seq >= last_seq,
                        "reader {reader_id}: version went backwards ({last_seq} -> {seq})"
                    );
                    last_seq = seq;
                    let reference = references
                        .lock()
                        .unwrap()
                        .get(&seq)
                        .unwrap_or_else(|| panic!("no reference recorded for seq {seq}"))
                        .clone();
                    // The pinned heap is exactly the committed state…
                    assert_heaps_identical(
                        &guard,
                        &reference,
                        &format!("reader {reader_id} pinned seq {seq}"),
                    );
                    // …and queries over it equal serialized execution.
                    let live = guard.select(query).unwrap();
                    let expected =
                        ontoaccess::execute_select(&reference, mapping, parsed_query).unwrap();
                    assert_eq!(live.variables, expected.variables);
                    assert_eq!(
                        sorted_rows(&live),
                        sorted_rows(&expected),
                        "reader {reader_id}: query over seq {seq} diverged from reference"
                    );
                    iterations += 1;
                }
                iterations
            }));
        }

        // The storm, on this thread: randomized committed updates with
        // every 7th turned into an applied-then-rolled-back transaction.
        let mut reference = initial;
        for (k, text) in fixtures::workload::mixed_updates(WRITES, n, 99)
            .iter()
            .enumerate()
        {
            let op = parse_op(text);
            if k % 7 == 3 {
                let before = mediator.concurrency_stats().current_version;
                let mut txn = mediator.write();
                let _ = txn.update_op(&op);
                txn.rollback().unwrap();
                assert_eq!(
                    mediator.concurrency_stats().current_version,
                    before,
                    "rollback published a version: {text}"
                );
                continue;
            }
            // Serialized reference execution on a scratch copy; record
            // it under the sequence the commit would publish. (If the
            // update is rejected or a no-op nothing is published and
            // the provisional entry is simply overwritten by the next
            // committed write — the sequence never becomes pinnable
            // before then.)
            let expected_seq = mediator.concurrency_stats().current_version + 1;
            let mut scratch = reference.clone();
            let reference_result = ontoaccess::execute_update_op(&mut scratch, mapping, &op);
            if reference_result.is_ok() {
                references
                    .lock()
                    .unwrap()
                    .insert(expected_seq, scratch.clone());
            }
            let live_result = mediator.execute_update_op(&op);
            assert_eq!(
                live_result.is_ok(),
                reference_result.is_ok(),
                "live and reference outcomes diverged: {text}"
            );
            if reference_result.is_ok() {
                reference = scratch;
            }
        }
        done.store(true, Ordering::Relaxed);
        for handle in handles {
            assert!(handle.join().unwrap() > 0, "reader never ran");
        }

        // The final published state is the serialized reference state.
        assert_heaps_identical(&mediator.database(), &reference, "final state");
    });
}

/// Time travel: `read_at` pins a fixed historical version that later
/// commits cannot move, future sequences are rejected, and sequences
/// pushed out of the retention window are reported as retired.
#[test]
fn read_at_pins_history_and_respects_retention() {
    let mediator = fixtures::mediator();
    let mut references = vec![mediator.database().clone()]; // seq 0
    for i in 0..5i64 {
        mediator
            .execute_update(&fixtures::workload::insert_author(2_000_000 + i, 1, None))
            .unwrap();
        references.push(mediator.database().clone());
    }
    assert_eq!(mediator.concurrency_stats().current_version, 5);

    let session = mediator.read_at(2).unwrap();
    assert_eq!(session.database().version_seq(), 2);
    assert_heaps_identical(&session.database(), &references[2], "pinned seq 2");

    // Later commits advance the mediator but not the pinned session.
    for i in 5..8i64 {
        mediator
            .execute_update(&fixtures::workload::insert_author(2_000_000 + i, 1, None))
            .unwrap();
    }
    assert_eq!(mediator.concurrency_stats().current_version, 8);
    assert_eq!(session.database().version_seq(), 2);
    assert_heaps_identical(
        &session.database(),
        &references[2],
        "pinned seq 2 after commits",
    );

    // A sequence that has not been committed yet is an error…
    assert!(mediator.read_at(999).is_err());

    // …and so is one pushed out of the retention window. 40 more
    // commits retire everything at seq <= 8 (the window holds 32).
    for i in 8..48i64 {
        mediator
            .execute_update(&fixtures::workload::insert_author(2_000_000 + i, 1, None))
            .unwrap();
    }
    assert!(mediator.read_at(1).is_err(), "retired seq must be rejected");
    // The already-pinned session is unaffected by retirement.
    assert_heaps_identical(
        &session.database(),
        &references[2],
        "pinned survives retirement",
    );
}

/// Durable reopen: version numbering is the WAL commit sequence, so a
/// recovered mediator resumes exactly where the previous process
/// stopped — same current version, same state, and the next commit
/// takes the next sequence number.
#[test]
fn durable_reopen_resumes_version_numbering() {
    let dir = fixtures::scratch_dir("mvcc-reopen");
    let expected = {
        let (mediator, _) = fixtures::durable_mediator_with_sample_data(&dir);
        assert_eq!(mediator.concurrency_stats().current_version, 0);
        for i in 0..3i64 {
            mediator
                .execute_update(&fixtures::workload::insert_author(2_100_000 + i, 1, None))
                .unwrap();
        }
        assert_eq!(mediator.concurrency_stats().current_version, 3);
        mediator.database().clone()
    };

    let (mediator, _) = fixtures::durable_mediator_with_sample_data(&dir);
    assert_eq!(
        mediator.concurrency_stats().current_version,
        3,
        "reopen must resume the WAL commit sequence"
    );
    assert_heaps_identical(&mediator.database(), &expected, "recovered state");
    // The recovered version is readable as-of; pre-crash history is not
    // (only the recovered state survives the process boundary).
    assert_eq!(mediator.read_at(3).unwrap().database().version_seq(), 3);
    assert!(mediator.read_at(2).is_err());
    // The next commit continues the numbering.
    mediator
        .execute_update(&fixtures::workload::insert_author(2_100_900, 1, None))
        .unwrap();
    assert_eq!(mediator.concurrency_stats().current_version, 4);
    drop(mediator);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Drop glue / memory audit: a pinned session is the only thing keeping
/// a retired version alive — dropping it frees the version immediately
/// (observed through a `Weak` canary) — and a storm of short-lived
/// sessions leaves the live-session count at its baseline.
#[test]
fn read_session_drop_releases_versions_promptly() {
    let mediator = fixtures::mediator();
    assert_eq!(mediator.concurrency_stats().read_sessions_live, 0);

    mediator
        .execute_update(&fixtures::workload::insert_author(2_200_000, 1, None))
        .unwrap();
    let session = mediator.read_at(1).unwrap();
    let canary = mediator
        .version_weak_for_tests(1)
        .expect("seq 1 is in the chain");
    assert_eq!(mediator.concurrency_stats().read_sessions_live, 1);

    // Push seq 1 out of the retention window: the chain no longer holds
    // it, but the pinned session must.
    for i in 1..41i64 {
        mediator
            .execute_update(&fixtures::workload::insert_author(2_200_000 + i, 1, None))
            .unwrap();
    }
    assert!(
        mediator.version_weak_for_tests(1).is_none(),
        "seq 1 must have been retired from the chain"
    );
    assert!(
        canary.upgrade().is_some(),
        "the pinned session keeps its retired version alive"
    );
    drop(session);
    assert!(
        canary.upgrade().is_none(),
        "dropping the last session must free the retired version"
    );
    assert_eq!(mediator.concurrency_stats().read_sessions_live, 0);

    // A storm of short-lived sessions (create, query, drop) must return
    // the live count to baseline — nothing accumulates.
    let query = fixtures::workload::with_prefixes("SELECT ?x WHERE { ?x foaf:mbox ?m . }");
    for _ in 0..1000 {
        let session = mediator.read();
        let _ = session.select(&query).unwrap();
    }
    assert_eq!(mediator.concurrency_stats().read_sessions_live, 0);
}
