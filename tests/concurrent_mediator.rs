//! Concurrency contract of the mediator API.
//!
//! 1. Smoke: N reader threads issue cached and uncached queries while a
//!    writer commits savepoint-backed MODIFYs (and abandons some
//!    transactions) — readers must never observe a torn or partial
//!    write, only complete committed states.
//! 2. Property: the savepoint-backed write path must leave the database
//!    byte-for-byte identical to the old clone-and-swap semantics (run
//!    the op on a scratch clone, swap on success, discard on failure) —
//!    including for operations that fail mid-way, reusing the
//!    `write_pipeline_differential` harness assertions.

use proptest::prelude::*;
use sparql_update_rdb::fixtures;
use sparql_update_rdb::fixtures::diff::{assert_heaps_identical, assert_indexes_consistent};
use sparql_update_rdb::ontoaccess::{self, Mediator, OntoError, ReadSession};
use sparql_update_rdb::rdf::namespace::PrefixMap;
use sparql_update_rdb::sparql;
use std::sync::atomic::{AtomicBool, Ordering};

// The handles must cross threads: this is the compile-time acceptance
// check (a transport hands one ReadSession to each worker).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mediator>();
    assert_send_sync::<ReadSession>();
};

fn parse_op(text: &str) -> sparql::UpdateOp {
    sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap()
}

// A mediator whose authors all carry the title `"State0"`.
fn mediator_with_titled_authors(authors: usize) -> Mediator {
    let mediator = fixtures::mediator();
    let mut txn = mediator.write();
    txn.update(&fixtures::workload::with_prefixes(
        "INSERT DATA { ex:team1 foaf:name \"T1\" . }",
    ))
    .unwrap();
    for i in 0..authors {
        txn.update(&fixtures::workload::with_prefixes(&format!(
            "INSERT DATA {{ ex:author{id} foaf:family_name \"Last{id}\" ; \
             foaf:title \"State0\" ; ont:team ex:team1 . }}",
            id = 100 + i
        )))
        .unwrap();
    }
    txn.commit().unwrap();
    mediator
}

/// The concurrent smoke test: 4 readers × (1 cached + 1 uncached query
/// per iteration) against a writer that alternates committed
/// all-author MODIFYs with rolled-back transactions. Every reader
/// result must be a complete, uniform state — `authors` rows, all with
/// the same title, and never the title only rolled-back transactions
/// wrote.
#[test]
fn readers_never_observe_torn_or_uncommitted_writes() {
    const AUTHORS: usize = 20;
    const WRITER_ROUNDS: usize = 25;
    const READERS: usize = 4;

    let mediator = mediator_with_titled_authors(AUTHORS);
    let done = AtomicBool::new(false);
    let titles_query =
        fixtures::workload::with_prefixes("SELECT ?t WHERE { ?x a foaf:Person ; foaf:title ?t . }");

    std::thread::scope(|scope| {
        let mediator = &mediator;
        let done = &done;
        let titles_query = &titles_query;

        let mut handles = Vec::new();
        for reader_id in 0..READERS {
            let session = mediator.read();
            handles.push(scope.spawn(move || {
                let mut iterations = 0usize;
                while !done.load(Ordering::Relaxed) || iterations == 0 {
                    // Cached query: all readers share one compilation.
                    let sols = session.select(titles_query).unwrap();
                    assert_eq!(
                        sols.len(),
                        AUTHORS,
                        "reader {reader_id} saw a partial state"
                    );
                    let titles: Vec<String> =
                        sols.bindings.iter().map(|b| b["t"].to_string()).collect();
                    assert!(
                        titles.iter().all(|t| t == &titles[0]),
                        "reader {reader_id} observed a torn MODIFY: {titles:?}"
                    );
                    assert!(
                        !titles[0].contains("Tentative"),
                        "reader {reader_id} observed an uncommitted transaction"
                    );
                    // Uncached query: unique text exercises the
                    // compile → provision-indexes → admit path (and the
                    // clock cache) under concurrency.
                    let uncached = fixtures::workload::with_prefixes(&format!(
                        "SELECT ?x WHERE {{ ?x foaf:title \"Probe{reader_id}x{iterations}\" . }}"
                    ));
                    assert!(session.select(&uncached).unwrap().is_empty());
                    iterations += 1;
                }
                iterations
            }));
        }

        // The writer: committed state flips plus abandoned transactions.
        for round in 1..=WRITER_ROUNDS {
            let modify = |title: &str| {
                fixtures::workload::with_prefixes(&format!(
                    "MODIFY DELETE {{ ?x foaf:title ?t . }} \
                     INSERT {{ ?x foaf:title \"{title}\" . }} \
                     WHERE {{ ?x a foaf:Person ; foaf:title ?t . }}"
                ))
            };
            // A transaction that writes and is dropped without commit:
            // its state must be invisible to every reader.
            {
                let mut txn = mediator.write();
                txn.update(&modify(&format!("Tentative{round}"))).unwrap();
                txn.rollback().unwrap();
            }
            // The committed flip.
            mediator
                .execute_update(&modify(&format!("State{round}")))
                .unwrap();
        }
        done.store(true, Ordering::Relaxed);

        for handle in handles {
            let iterations = handle.join().unwrap();
            assert!(iterations > 0, "reader never ran");
        }
    });

    // Final state: the last committed flip, fully applied.
    let sols = mediator.select(&titles_query).unwrap();
    assert_eq!(sols.len(), AUTHORS);
    assert!(sols.bindings.iter().all(|b| b["t"]
        .to_string()
        .contains(&format!("State{WRITER_ROUNDS}"))));
}

// ----------------------------------------------------------------------
// Savepoint rollback ≡ clone-and-swap (the seed's atomicity recipe)
// ----------------------------------------------------------------------

// The mixed workload of the write-pipeline harness, plus the shapes
// that specifically stress nested savepoints: a MODIFY whose *insert
// round* fails after its delete round succeeded, and a mid-group
// RESTRICT failure.
fn workload_ops(team: i64, k: usize) -> Vec<String> {
    let team_uri = format!("ex:team{team}");
    let base = 800_000 + 10 * k as i64;
    vec![
        fixtures::workload::insert_author(500_000 + k as i64, k % 5, Some(team)),
        fixtures::workload::insert_complete_dataset(600_000 + k as i64),
        fixtures::workload::with_prefixes(&format!(
            "INSERT DATA {{
               ex:team{a} foaf:name \"Ta{k}\" ; ont:teamCode \"Ka{k}\" .
               ex:team{b} foaf:name \"Tb{k}\" .
               ex:team{c} foaf:name \"Tc{k}\" ; ont:teamCode \"Kc{k}\" .
             }}",
            a = base,
            b = base + 1,
            c = base + 2,
        )),
        fixtures::workload::with_prefixes(&format!(
            "INSERT {{ ?x foaf:title \"Dr\" . }} WHERE {{ ?x ont:team {team_uri} . }}"
        )),
        fixtures::workload::with_prefixes(&format!(
            "MODIFY DELETE {{ ?x foaf:mbox ?m . }} \
             INSERT {{ ?x foaf:mbox <mailto:all@new.org> . }} \
             WHERE {{ ?x ont:team {team_uri} ; foaf:mbox ?m . }}"
        )),
        // Delete round succeeds (emails nulled), insert round dangles →
        // the nested savepoint must undo the delete round too.
        fixtures::workload::with_prefixes(
            "MODIFY DELETE { ?x foaf:mbox ?m . } \
             INSERT { ?x ont:team ex:team987654321 . } \
             WHERE { ?x foaf:mbox ?m . }",
        ),
        fixtures::workload::delete_author_email(1000 + k as i64),
        // Whole-team deletes: RESTRICT fires mid-group when a team is
        // still referenced.
        fixtures::workload::with_prefixes(
            "MODIFY DELETE { ?t a foaf:Group ; foaf:name ?n ; ont:teamCode ?c . } \
             INSERT { } WHERE { ?t foaf:name ?n ; ont:teamCode ?c . }",
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On randomized database states and a mixed workload including
    /// rejected operations, the savepoint-backed live write path (the
    /// mediator's transaction machinery) must leave the database
    /// byte-for-byte identical — heap and indexes — to the clone-and-
    /// swap reference the seed endpoint used for atomicity.
    #[test]
    fn savepoint_rollback_equals_clone_and_swap(
        n in 2usize..20,
        seed in 0u64..300,
        team_index in 0usize..4,
    ) {
        let initial = fixtures::data::populated_database(n, seed);
        let mediator = Mediator::new(initial.clone(), fixtures::mapping()).unwrap();
        let mut reference = initial;
        let mapping = fixtures::mapping();
        let team = fixtures::data::ID_BASE + (team_index % (n / 10).max(2)) as i64;
        for (k, text) in workload_ops(team, n).iter().enumerate() {
            let op = parse_op(text);
            // Clone-and-swap reference: scratch copy, adopt on success.
            let reference_result = {
                let mut scratch = reference.clone();
                match ontoaccess::execute_update_op(&mut scratch, &mapping, &op) {
                    Ok(report) => {
                        reference = scratch;
                        Ok(report)
                    }
                    Err(e) => Err(e),
                }
            };
            // Live path: savepoint scopes on the shared database.
            let live_result = mediator.execute_update_op(&op);
            match (&live_result, &reference_result) {
                (Ok(live), Ok(reference)) => {
                    assert_eq!(
                        live.rows_affected, reference.rows_affected,
                        "row accounting differs: {text}"
                    );
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(
                        std::mem::discriminant(ea),
                        std::mem::discriminant(eb),
                        "error kinds differ: {text}: live={ea}, reference={eb}"
                    );
                    if let (OntoError::Database(ra), OntoError::Database(rb)) = (ea, eb) {
                        assert_eq!(
                            std::mem::discriminant(ra),
                            std::mem::discriminant(rb),
                            "engine error kinds differ: {text}: live={ra}, reference={rb}"
                        );
                    }
                }
                (Ok(_), Err(e)) => panic!("live succeeded, reference failed ({e}): {text}"),
                (Err(e), Ok(_)) => panic!("live failed ({e}), reference succeeded: {text}"),
            }
            let live = mediator.database().clone();
            assert_heaps_identical(&live, &reference, &format!("op {k}: {text}"));
            assert_indexes_consistent(&live, &format!("op {k} (live)"));
        }
    }

    /// Atomic scripts: rolling back a failing script through savepoints
    /// must equal never having run it (the seed restored a snapshot).
    #[test]
    fn atomic_script_rollback_equals_snapshot_restore(
        n in 2usize..15,
        seed in 0u64..200,
    ) {
        let initial = fixtures::data::populated_database(n, seed);
        let mediator = Mediator::new(initial.clone(), fixtures::mapping()).unwrap();
        // Two good operations, then one that dangles.
        let script = fixtures::workload::with_prefixes(
            "INSERT DATA { ex:team900000 foaf:name \"S1\" . } ;\n\
             INSERT DATA { ex:author900000 foaf:family_name \"S\" ; ont:team ex:team900000 . } ;\n\
             INSERT DATA { ex:author900001 ont:team ex:team987654321 . }",
        );
        let err = mediator.execute_script(&script, true).unwrap_err();
        assert_eq!(err.operation_index, 2);
        assert_eq!(err.completed.len(), 2);
        let live = mediator.database().clone();
        assert_heaps_identical(&live, &initial, "atomic script rollback");
        assert_indexes_consistent(&live, "atomic script rollback");
    }
}
