//! Crash-recovery differential tests for the durability subsystem.
//!
//! The contract under test (ISSUE 5 acceptance): for randomized update
//! workloads against a durable mediator, killing the process at an
//! **arbitrary WAL byte prefix** and recovering must yield a heap +
//! index state byte-identical (via [`fixtures::diff`]) to the
//! in-memory reference state after exactly the commits the prefix
//! fully contains — never a torn half-transaction, never a lost
//! acknowledged commit, and with the row-id allocators positioned so
//! post-recovery inserts behave exactly like the un-crashed run.
//!
//! The "kill" is simulated precisely: the workload runs once against a
//! real durable mediator while the reference run clones the in-memory
//! database after every commit; then, for many byte prefixes of the
//! final WAL, a fresh directory gets the snapshot plus the truncated
//! log, and recovery's result is compared against the reference state
//! indexed by how many commits the prefix holds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparql_update_rdb::dur::{self, Durability};
use sparql_update_rdb::fixtures::{self, diff};
use sparql_update_rdb::ontoaccess::Mediator;
use sparql_update_rdb::rel::Database;
use std::path::Path;

fn base_db() -> Database {
    let mut db = fixtures::database();
    fixtures::seed_paper_rows(&mut db);
    db
}

fn durable_mediator(dir: &Path) -> Mediator {
    Mediator::open_durable(dir, base_db(), fixtures::mapping())
        .expect("data dir opens")
        .0
}

// Heaps, indexes, secondary-index column sets, and row-id allocators
// must all agree.
fn assert_states_identical(reference: &Database, recovered: &Database, context: &str) {
    diff::assert_heaps_identical(reference, recovered, context);
    diff::assert_indexes_consistent(recovered, context);
    for table in reference.schema().tables() {
        assert_eq!(
            reference.secondary_index_columns(&table.name).unwrap(),
            recovered.secondary_index_columns(&table.name).unwrap(),
            "secondary index set differs for {}: {context}",
            table.name
        );
        assert_eq!(
            reference.next_row_id(&table.name).unwrap(),
            recovered.next_row_id(&table.name).unwrap(),
            "row-id allocator differs for {}: {context}",
            table.name
        );
    }
}

// Build a fresh directory holding `dir`'s snapshots plus the first
// `cut` bytes of its WAL — the disk state a kill at that write position
// leaves behind.
fn dir_with_wal_prefix(src: &Path, wal: &[u8], cut: usize) -> std::path::PathBuf {
    let dst = fixtures::scratch_dir("recovery-cut");
    std::fs::create_dir_all(&dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".snap")) {
            std::fs::copy(entry.path(), dst.join(name)).unwrap();
        }
    }
    std::fs::write(dst.join(dur::WAL_FILE), &wal[..cut]).unwrap();
    dst
}

// ----------------------------------------------------------------------
// Randomized workload
// ----------------------------------------------------------------------

// One update request; some are deliberately rejectable (dangling
// references, absent triples, already-set attributes) — rejected and
// savepoint-rolled-back work must never reach the log.
enum Step {
    Single(String),
    AtomicScript(String),
}

fn random_step(rng: &mut StdRng, k: usize, inserted: &mut Vec<i64>) -> Step {
    let fresh = 900_000 + k as i64;
    let team = if rng.gen_bool(0.5) { 4 } else { 5 };
    match rng.gen_range(0..10usize) {
        0 | 1 => {
            inserted.push(fresh);
            Step::Single(fixtures::workload::insert_author(
                fresh,
                rng.gen_range(0..5),
                Some(team),
            ))
        }
        2 => Step::Single(fixtures::workload::insert_complete_dataset(fresh)),
        3 => Step::Single(fixtures::workload::modify_team_members(
            team,
            &format!("T{k}"),
        )),
        4 => {
            // Often rejected: the author may not exist or have no email.
            let id = inserted
                .get(rng.gen_range(0..inserted.len().max(1)))
                .copied()
                .unwrap_or(fresh);
            Step::Single(fixtures::workload::delete_author_email(id))
        }
        5 => {
            // Rejected (dangling team): must leave no trace in the log.
            Step::Single(fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:author{fresh} foaf:family_name \"L{k}\" ; \
                 ont:team ex:team424242 . }}"
            )))
        }
        6 => {
            // Rejected on repeat (attribute already set) once the same
            // author id was inserted before.
            let id = inserted.first().copied().unwrap_or(fresh);
            Step::Single(fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:author{id} foaf:family_name \"Other{k}\" . }}"
            )))
        }
        7 => {
            // Null-update MODIFY for a known author's email.
            let id = inserted.last().copied().unwrap_or(fresh);
            Step::Single(fixtures::workload::with_prefixes(&format!(
                "MODIFY DELETE {{ ex:author{id} foaf:mbox ?m . }} INSERT {{ }} \
                 WHERE {{ ex:author{id} foaf:mbox ?m . }}"
            )))
        }
        8 => {
            // Multi-operation atomic script: one commit unit.
            inserted.push(fresh);
            Step::AtomicScript(fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:team{fresh} foaf:name \"S{k}\" . }} ;\n\
                 INSERT DATA {{ ex:author{fresh} foaf:family_name \"Script{k}\" ; \
                 ont:team ex:team{fresh} . }}"
            )))
        }
        _ => {
            // Atomic script whose second operation fails: the whole
            // request must roll back and log nothing.
            Step::AtomicScript(fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:team{fresh} foaf:name \"F{k}\" . }} ;\n\
                 INSERT DATA {{ ex:author{fresh} ont:team ex:team555555 . }}"
            )))
        }
    }
}

// The reference side of one workload run: the in-memory database state
// after every commit that reached the log, and the WAL byte size at
// each of those points (`wal_marks[i]` = log size once `states[i]` was
// durable — commit-unit boundaries, used to pick interesting cuts).
struct ReferenceRun {
    states: Vec<Database>,
    wal_marks: Vec<u64>,
}

// Run the workload against the durable mediator, capturing the
// in-memory reference state after every commit that reached the log.
fn run_workload(mediator: &Mediator, seed: u64, steps: usize) -> ReferenceRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inserted = Vec::new();
    let mut states = vec![mediator.database().clone()];
    let mut wal_marks = vec![mediator.durability_stats().unwrap().wal_bytes];
    let mut commits = mediator.durability_stats().unwrap().commits_appended;
    for k in 0..steps {
        match random_step(&mut rng, k, &mut inserted) {
            Step::Single(text) => {
                let _ = mediator.execute_update(&text);
            }
            Step::AtomicScript(text) => {
                let _ = mediator.execute_script(&text, true);
            }
        }
        let stats = mediator.durability_stats().unwrap();
        assert!(
            stats.commits_appended <= commits + 1,
            "one request must append at most one commit unit"
        );
        if stats.commits_appended > commits {
            commits = stats.commits_appended;
            states.push(mediator.database().clone());
            wal_marks.push(stats.wal_bytes);
        }
    }
    assert!(
        states.len() > steps / 3,
        "workload degenerated: only {} commits in {steps} steps",
        states.len() - 1
    );
    ReferenceRun { states, wal_marks }
}

// For every chosen WAL byte prefix: recover and compare against the
// reference state holding exactly the prefix's commits. `run` must
// describe the *current* log (its `states[0]` is the state the
// snapshot in `src` covers, so a prefix replaying `k` commits must
// equal `states[k]`); `run.wal_marks` are the commit-unit boundaries.
fn check_prefixes(src: &Path, run: &ReferenceRun) {
    let states = &run.states;
    let wal = std::fs::read(src.join(dur::WAL_FILE)).unwrap();
    let magic = dur::wal::WAL_MAGIC.len();
    // Cut candidates: every commit-unit boundary, every byte of the
    // last two units, a stride across the rest, and both ends.
    let tail_start = run.wal_marks[run.wal_marks.len().saturating_sub(3)] as usize;
    let mut cuts: Vec<usize> = (magic..=wal.len())
        .filter(|cut| cut % 11 == 0 || *cut >= tail_start)
        .collect();
    cuts.push(magic);
    cuts.push(wal.len());
    cuts.extend(run.wal_marks.iter().map(|&m| m as usize));
    cuts.retain(|&cut| cut >= magic && cut <= wal.len());
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        let sub = dir_with_wal_prefix(src, &wal, cut);
        let opened = Durability::open(&sub, base_db())
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let k = opened.report.commits_replayed as usize;
        assert!(
            k < states.len(),
            "prefix at {cut} claims more commits ({k}) than ever ran"
        );
        assert_states_identical(
            &states[k],
            &opened.db,
            &format!("wal prefix of {cut} bytes → {k} commit(s)"),
        );
        drop(opened);
        std::fs::remove_dir_all(&sub).unwrap();
    }
}

#[test]
fn kill_at_arbitrary_wal_prefix_recovers_the_committed_prefix_state() {
    for seed in [7u64, 23] {
        let dir = fixtures::scratch_dir("recovery-diff");
        let mediator = durable_mediator(&dir);
        let run = run_workload(&mediator, seed, 36);
        drop(mediator);
        check_prefixes(&dir, &run);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn kill_after_mid_workload_checkpoint_recovers_snapshot_plus_suffix() {
    let dir = fixtures::scratch_dir("recovery-ckpt");
    let mediator = durable_mediator(&dir);
    let before = run_workload(&mediator, 99, 18);
    let checkpoint_commits = before.states.len() - 1;
    let seq = mediator.checkpoint().unwrap();
    assert_eq!(seq as usize, checkpoint_commits, "seq counts commits");
    // More commits after the checkpoint land in the truncated log; the
    // post-checkpoint run's reference states index the new log directly
    // (its states[0] is exactly what the snapshot covers).
    let after = run_workload(&mediator, 100, 18);
    drop(mediator);
    check_prefixes(&dir, &after);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_mediator_continues_exactly_like_the_uncrashed_run() {
    // After a full recovery, the next updates (including auto-increment
    // allocation in the link table) must behave byte-identically to
    // simply continuing on the reference state.
    let dir = fixtures::scratch_dir("recovery-continue");
    let mediator = durable_mediator(&dir);
    let run = run_workload(&mediator, 41, 24);
    drop(mediator);

    let recovered = durable_mediator(&dir); // full-WAL recovery
    let reference = Mediator::new(run.states.last().unwrap().clone(), fixtures::mapping()).unwrap();
    // insert_complete_dataset exercises publication_author's
    // auto-increment surrogate key.
    let canary = fixtures::workload::insert_complete_dataset(999_999);
    recovered.execute_update(&canary).unwrap();
    reference.execute_update(&canary).unwrap();
    assert_states_identical(
        &reference.database().clone(),
        &recovered.database().clone(),
        "post-recovery canary insert",
    );
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Torn / corrupt tails (ISSUE satellite)
// ----------------------------------------------------------------------

#[test]
fn torn_tail_is_truncated_at_every_byte_offset_of_the_final_record() {
    let dir = fixtures::scratch_dir("torn-tail");
    let mediator = durable_mediator(&dir);
    let mut states = vec![mediator.database().clone()];
    let mut boundary = 0u64;
    for (i, name) in ["Ada", "Grace", "Edsger"].iter().enumerate() {
        if i == 2 {
            boundary = mediator.durability_stats().unwrap().wal_bytes;
        }
        mediator
            .execute_update(&fixtures::workload::with_prefixes(&format!(
                "INSERT DATA {{ ex:author{} foaf:family_name \"{name}\" . }}",
                910_000 + i
            )))
            .unwrap();
        states.push(mediator.database().clone());
    }
    drop(mediator);
    let wal = std::fs::read(dir.join(dur::WAL_FILE)).unwrap();
    let boundary = boundary as usize;
    assert!(boundary > 0 && boundary < wal.len());

    // Truncation inside the final commit unit: every byte offset.
    for cut in boundary..wal.len() {
        let sub = dir_with_wal_prefix(&dir, &wal, cut);
        let opened = Durability::open(&sub, base_db()).unwrap();
        assert_eq!(
            opened.report.commits_replayed, 2,
            "cut at {cut}: complete records kept, torn suffix dropped"
        );
        assert_states_identical(&states[2], &opened.db, &format!("torn cut at {cut}"));
        // Recovery physically truncated the torn suffix.
        let len = std::fs::metadata(sub.join(dur::WAL_FILE)).unwrap().len();
        assert_eq!(len as usize, boundary, "cut at {cut}");
        assert_eq!(opened.report.truncated_bytes as usize, cut - boundary);
        drop(opened);
        std::fs::remove_dir_all(&sub).unwrap();
    }

    // Bit flips anywhere in the final unit (checksum or payload): the
    // damaged unit is dropped whole, everything before it survives.
    for flip_at in boundary..wal.len() {
        let mut damaged = wal.clone();
        damaged[flip_at] ^= 0x01;
        let sub = dir_with_wal_prefix(&dir, &damaged, damaged.len());
        let opened = Durability::open(&sub, base_db()).unwrap();
        assert_eq!(
            opened.report.commits_replayed, 2,
            "flip at {flip_at}: damaged record dropped"
        );
        assert_states_identical(&states[2], &opened.db, &format!("flip at {flip_at}"));
        drop(opened);
        std::fs::remove_dir_all(&sub).unwrap();
    }

    // The undamaged log still recovers everything.
    let opened = Durability::open(&dir, base_db()).unwrap();
    assert_eq!(opened.report.commits_replayed, 3);
    assert_states_identical(&states[3], &opened.db, "undamaged log");
    drop(opened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_authoritative_snapshot_fails_loudly_instead_of_resurrecting_stale_state() {
    let dir = fixtures::scratch_dir("corrupt-snapshot");
    let mediator = durable_mediator(&dir);
    mediator
        .execute_update(&fixtures::workload::insert_author(920_000, 2, None))
        .unwrap();
    mediator.checkpoint().unwrap();
    drop(mediator);
    // Flip one byte in the middle of the (now only) snapshot.
    let snapshot = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".snap")))
        .expect("checkpoint left a snapshot")
        .path();
    let mut bytes = std::fs::read(&snapshot).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snapshot, &bytes).unwrap();
    assert!(
        matches!(
            Durability::open(&dir, base_db()),
            Err(dur::DurError::Corrupt { .. })
        ),
        "checkpointed WAL was truncated against this snapshot; recovery must not \
         silently fall back to an older state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
