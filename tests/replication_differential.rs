//! Replication differential suite: a real leader server under a
//! randomized write storm (rejected updates, explicit rollbacks, and
//! mid-storm checkpoints that truncate the WAL), with followers
//! attaching at arbitrary points. The contract: every follower that
//! reports itself caught up holds a **byte-identical** heap to the
//! leader — replication is continuous remote recovery, so the same
//! differential that validates crash recovery validates the wire.

use sparql_update_rdb::fixtures;
use sparql_update_rdb::fixtures::diff::assert_heaps_identical;
use sparql_update_rdb::ontoaccess::Mediator;
use sparql_update_rdb::ontoaccess_server::{serve, ServerConfig, ServerHandle};
use sparql_update_rdb::rdf::namespace::PrefixMap;
use sparql_update_rdb::repl::{ReplState, ReplicationStatus, Replicator, ReplicatorConfig};
use sparql_update_rdb::sparql;
use std::time::{Duration, Instant};

fn durable_leader(dir: &std::path::Path, n: usize, seed: u64) -> (Mediator, ServerHandle) {
    let initial = fixtures::data::populated_database(n, seed);
    let (mediator, _) = Mediator::open_durable(dir, initial, fixtures::mapping()).unwrap();
    let server = serve(
        mediator.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral leader port");
    (mediator, server)
}

fn attach_follower(leader: &ServerHandle, throttle: Duration) -> (Mediator, Replicator) {
    Replicator::start(
        leader.addr().to_string(),
        fixtures::database(),
        fixtures::mapping(),
        ReplicatorConfig {
            poll_timeout: Duration::from_millis(300),
            backoff_initial: Duration::from_millis(20),
            throttle_apply: throttle,
            ..ReplicatorConfig::default()
        },
    )
    .expect("bootstrap against live leader")
}

fn wait_until_applied(status: &ReplicationStatus, target_seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = status.snapshot();
        assert_ne!(
            snap.state,
            ReplState::Failed,
            "follower failed: {:?}",
            snap.last_error
        );
        if snap.applied_seq >= target_seq {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower stuck at {snap:?}, want seq {target_seq}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// The storm: randomized committed updates, every 7th-with-offset-3
// turned into an applied-then-rolled-back transaction (published to
// nobody), rejections surfaced by `mixed_updates` left in, and a
// checkpoint — WAL truncation + epoch bump — every `checkpoint_every`
// writes. Returns the number of committed transactions.
fn run_storm(mediator: &Mediator, writes: usize, n: usize, seed: u64, checkpoint_every: usize) {
    for (k, text) in fixtures::workload::mixed_updates(writes, n, seed)
        .iter()
        .enumerate()
    {
        if k % 7 == 3 {
            let op = sparql::parse_update_with_prefixes(text, PrefixMap::common()).unwrap();
            let mut txn = mediator.write();
            let _ = txn.update_op(&op);
            txn.rollback().unwrap();
            continue;
        }
        // Rejected updates answer Err and publish nothing; that is part
        // of the storm on purpose — the WAL must carry only commits.
        let _ = mediator.execute_update(text);
        if checkpoint_every != 0 && k % checkpoint_every == checkpoint_every - 1 {
            mediator.checkpoint().unwrap();
        }
    }
}

/// Followers attaching before and during the storm both converge to a
/// byte-identical heap, across mid-storm WAL truncations.
#[test]
fn followers_converge_byte_identically_under_write_storm() {
    let dir = fixtures::scratch_dir("repl-diff-storm");
    let n = 24;
    let (leader, server) = durable_leader(&dir, n, 7);

    // Follower A attaches to the quiet leader (bootstraps snapshot 0).
    let (mediator_a, replicator_a) = attach_follower(&server, Duration::ZERO);

    // First half of the storm, with a checkpoint every 25 writes.
    run_storm(&leader, 60, n, 99, 25);

    // Follower B attaches at an arbitrary mid-storm point: its
    // bootstrap snapshot is whatever the last checkpoint produced, and
    // the rest arrives over the wire.
    let (mediator_b, replicator_b) = attach_follower(&server, Duration::ZERO);

    // Second half, different seed so the mix differs.
    run_storm(&leader, 60, n, 1234, 25);

    let target = leader.concurrency_stats().current_version;
    assert!(target > 0, "storm must have committed something");
    wait_until_applied(&replicator_a.status(), target);
    wait_until_applied(&replicator_b.status(), target);

    assert_heaps_identical(&mediator_a.database(), &leader.database(), "follower A");
    assert_heaps_identical(&mediator_b.database(), &leader.database(), "follower B");
    // Leader-aligned version numbering: both followers publish the
    // leader's commit sequence numbers, not a private counter.
    assert_eq!(mediator_a.concurrency_stats().current_version, target);
    assert_eq!(mediator_b.concurrency_stats().current_version, target);

    server.shutdown();
    replicator_a.stop();
    replicator_b.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A throttled follower falls behind the leader's checkpoints (its WAL
/// coordinates get truncated away) and must recover through the
/// reposition path — adopting the new epoch or re-bootstrapping from
/// the newest snapshot — without diverging.
#[test]
fn lagging_follower_survives_wal_truncation() {
    let dir = fixtures::scratch_dir("repl-diff-truncate");
    let n = 16;
    let (leader, server) = durable_leader(&dir, n, 3);

    // Throttle each apply so the follower is guaranteed to lag while
    // the leader checkpoints aggressively (every 10 writes).
    let (mediator, replicator) = attach_follower(&server, Duration::from_millis(5));
    run_storm(&leader, 80, n, 555, 10);

    let target = leader.concurrency_stats().current_version;
    wait_until_applied(&replicator.status(), target);
    assert_heaps_identical(
        &mediator.database(),
        &leader.database(),
        "throttled follower after truncations",
    );

    server.shutdown();
    replicator.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A follower killed mid-apply loses nothing the leader still has: a
/// fresh replicator bootstraps from the leader's newest snapshot and
/// reconverges to the byte-identical heap.
#[test]
fn follower_killed_mid_apply_reconverges_on_restart() {
    let dir = fixtures::scratch_dir("repl-diff-restart");
    let n = 16;
    let (leader, server) = durable_leader(&dir, n, 11);

    // Slow follower so the kill lands mid-apply with real lag.
    let (mediator_old, replicator_old) = attach_follower(&server, Duration::from_millis(5));
    run_storm(&leader, 50, n, 777, 0);
    let killed_at = replicator_old.status().snapshot().applied_seq;
    replicator_old.stop(); // "kill": the tail thread is gone for good
    let target = leader.concurrency_stats().current_version;
    assert!(
        killed_at < target,
        "kill must land mid-apply (applied {killed_at}, leader at {target})"
    );
    drop(mediator_old);

    // Restart: a brand-new replicator (fresh bootstrap, no state
    // carried over) reconverges.
    let (mediator_new, replicator_new) = attach_follower(&server, Duration::ZERO);
    wait_until_applied(&replicator_new.status(), target);
    assert_heaps_identical(
        &mediator_new.database(),
        &leader.database(),
        "restarted follower",
    );

    server.shutdown();
    replicator_new.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
