//! Differential tests for the index-backed join planner: on randomized
//! schemas, data, and queries, the planner
//! ([`rel::sql::execute`]) must return results identical to the naive
//! clone-everything nested-loop reference executor
//! ([`rel::sql::execute_select_reference`]) — including while a
//! transaction is open and after it rolls back (index state must track
//! the undo log exactly).

use proptest::prelude::*;
use sparql_update_rdb::fixtures;
use sparql_update_rdb::ontoaccess;
use sparql_update_rdb::rel::{self, Column, Database, Schema, SqlType, Table, Value};

// ----------------------------------------------------------------------
// Randomized star schema: parent ← child, link(parent, child)
// ----------------------------------------------------------------------

/// Schema-shape knobs the strategy randomizes: with `declare_fks` the
/// join columns are declared FK columns (auto-indexed → index nested
/// loops); without, they are plain columns (per-query hash joins).
#[derive(Debug, Clone)]
struct SchemaSpec {
    declare_fks: bool,
    parents: usize,
    children: usize,
    links: usize,
    val_domain: i64,
    seed: u64,
}

fn schema_spec() -> impl Strategy<Value = SchemaSpec> {
    (
        any::<bool>(),
        0usize..25,
        0usize..40,
        0usize..60,
        1i64..6,
        0u64..1_000_000,
    )
        .prop_map(
            |(declare_fks, parents, children, links, val_domain, seed)| SchemaSpec {
                declare_fks,
                parents,
                children,
                links,
                val_domain,
                seed,
            },
        )
}

fn build_database(spec: &SchemaSpec) -> Database {
    let mut schema = Schema::new();
    schema
        .add_table(
            Table::builder("parent")
                .column(Column::new("id", SqlType::Integer).not_null())
                .column(Column::new("name", SqlType::Varchar))
                .column(Column::new("val", SqlType::Integer))
                .primary_key(&["id"])
                .build(),
        )
        .unwrap();
    let mut child = Table::builder("child")
        .column(Column::new("id", SqlType::Integer).not_null())
        .column(Column::new("p", SqlType::Integer))
        .column(Column::new("w", SqlType::Varchar))
        .primary_key(&["id"]);
    if spec.declare_fks {
        child = child.foreign_key("p", "parent", "id");
    }
    schema.add_table(child.build()).unwrap();
    let mut link = Table::builder("link")
        .column(
            Column::new("id", SqlType::Integer)
                .not_null()
                .auto_increment(),
        )
        .column(Column::new("a", SqlType::Integer))
        .column(Column::new("b", SqlType::Integer))
        .primary_key(&["id"]);
    if spec.declare_fks {
        link = link
            .foreign_key("a", "parent", "id")
            .foreign_key("b", "child", "id");
    }
    schema.add_table(link.build()).unwrap();
    let mut db = Database::new(schema).unwrap();

    // Deterministic pseudo-random population from the spec's seed.
    let mut state = spec.seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let a = |name: &str, v: Value| (name.to_owned(), v);
    for i in 0..spec.parents {
        db.insert(
            "parent",
            &[
                a("id", Value::Int(i as i64)),
                a("name", Value::text(format!("p{}", next() % 7))),
                a("val", Value::Int((next() % spec.val_domain as u64) as i64)),
            ],
        )
        .unwrap();
    }
    for i in 0..spec.children {
        let p = if spec.parents > 0 && next() % 10 < 9 {
            Value::Int((next() % spec.parents as u64) as i64)
        } else {
            Value::Null
        };
        db.insert(
            "child",
            &[
                a("id", Value::Int(i as i64)),
                a("p", p),
                a("w", Value::text(format!("w{}", next() % 5))),
            ],
        )
        .unwrap();
    }
    for _ in 0..spec.links {
        if spec.parents == 0 || spec.children == 0 {
            break;
        }
        db.insert(
            "link",
            &[
                a("a", Value::Int((next() % spec.parents as u64) as i64)),
                a("b", Value::Int((next() % spec.children as u64) as i64)),
            ],
        )
        .unwrap();
    }
    db
}

// Query templates over the star schema, parameterized by small
// constants so restrictions sometimes match and sometimes don't.
fn queries(k: i64, s: u64) -> Vec<String> {
    vec![
        "SELECT c.id, p.name FROM child c, parent p WHERE c.p = p.id;".into(),
        format!("SELECT c.id FROM child c, parent p WHERE c.p = p.id AND p.val = {k};"),
        format!(
            "SELECT * FROM link l, parent p, child c \
             WHERE l.a = p.id AND l.b = c.id AND c.w = 'w{}';",
            s % 6
        ),
        format!("SELECT p.id, c.id FROM parent p, child c WHERE p.val < {k};"),
        "SELECT DISTINCT p.val FROM parent p, child c WHERE p.id = c.p;".into(),
        format!("SELECT id FROM parent WHERE id = {k};"),
        "SELECT p.id FROM parent p, child c, link l \
         WHERE l.a = p.id AND l.b = c.id AND c.p = p.id;"
            .into(),
    ]
}

fn assert_planner_matches_reference(db: &mut Database, sql: &str) -> Result<(), TestCaseError> {
    let stmt = rel::sql::parse(sql).unwrap();
    let rel::sql::Statement::Select(select) = &stmt else {
        panic!("template is a SELECT")
    };
    let reference = rel::sql::execute_select_reference(db, select).unwrap();
    let planner = rel::sql::execute(db, &stmt).unwrap();
    let planner = planner.rows().unwrap();
    prop_assert_eq!(planner, &reference, "query: {}", sql);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planner ≡ reference over randomized schema shapes, data, and
    /// query constants — before, during, and after a rolled-back
    /// transaction (post-rollback index state must match the heap).
    #[test]
    fn planner_matches_reference_on_random_star_schemas(
        spec in schema_spec(),
        k in 0i64..6,
    ) {
        let mut db = build_database(&spec);
        for sql in queries(k, spec.seed) {
            assert_planner_matches_reference(&mut db, &sql)?;
        }

        // Mutate inside a transaction: the planner must see the
        // in-transaction state through its indexes.
        let before: Vec<_> = queries(k, spec.seed)
            .iter()
            .map(|q| {
                let stmt = rel::sql::parse(q).unwrap();
                rel::sql::execute(&mut db, &stmt).unwrap()
            })
            .collect();
        db.begin().unwrap();
        let fresh_parent = 1_000 + k;
        db.insert(
            "parent",
            &[
                ("id".to_owned(), Value::Int(fresh_parent)),
                ("name".to_owned(), Value::text("txn")),
                ("val".to_owned(), Value::Int(k)),
            ],
        )
        .unwrap();
        rel::sql::execute_sql(&mut db, &format!("DELETE FROM link WHERE a = {k};")).unwrap();
        rel::sql::execute_sql(
            &mut db,
            &format!("UPDATE child SET p = NULL WHERE p = {k};"),
        )
        .unwrap();
        for sql in queries(k, spec.seed) {
            assert_planner_matches_reference(&mut db, &sql)?;
        }
        db.rollback().unwrap();

        // Post-rollback: planner ≡ reference, and identical to the
        // pre-transaction results.
        for (sql, earlier) in queries(k, spec.seed).iter().zip(before) {
            assert_planner_matches_reference(&mut db, sql)?;
            let stmt = rel::sql::parse(sql).unwrap();
            let now = rel::sql::execute(&mut db, &stmt).unwrap();
            prop_assert_eq!(now, earlier, "post-rollback drift: {}", sql);
        }
    }

    /// Planner ≡ reference on the publication workload's translated
    /// SQL (the exact join shapes Algorithm 2 runs), across randomized
    /// database states.
    #[test]
    fn planner_matches_reference_on_workload_queries(
        n in 1usize..40,
        seed in 0u64..1000,
        min_year in 1990i64..2015,
    ) {
        let mut db = fixtures::data::populated_database(n, seed);
        let mapping = fixtures::mapping();
        for text in [
            fixtures::workload::select_authors_with_team(),
            fixtures::workload::select_publications_with_authors(),
            fixtures::workload::select_recent_publications(min_year),
        ] {
            let query = sparql_update_rdb::sparql::parse_query_with_prefixes(
                &text,
                sparql_update_rdb::rdf::namespace::PrefixMap::common(),
            )
            .unwrap();
            let sparql_update_rdb::sparql::Query::Select(select) = query else {
                panic!()
            };
            let compiled = ontoaccess::compile_select(&db, &mapping, &select).unwrap();
            let reference = rel::sql::execute_select_reference(&db, &compiled.sql).unwrap();
            // Through the full planner path, indexes provisioned.
            ontoaccess::ensure_join_indexes(&mut db, &compiled).unwrap();
            let planner = rel::sql::execute(
                &mut db,
                &rel::sql::Statement::Select(compiled.sql.clone()),
            )
            .unwrap();
            prop_assert_eq!(planner.rows().unwrap(), &reference, "query: {}", text);
        }
    }
}
